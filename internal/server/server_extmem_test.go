package server

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ringo/internal/extmem"
	"ringo/internal/gen"
	"ringo/internal/graph"
)

// writeTruncated copies the first half of src to dst, producing an image
// whose header parses but whose sections run past the end of the file.
func writeTruncated(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data[:len(data)/2], 0o644)
}

// TestWarmStartMapped exercises the -restore flag's second path: when the
// file is an RNGM mapped CSR image, warm start binds it in place (no
// decode) as the read-only graph "g", analytics work over it, and the
// mapped bytes surface on GET /stats and GET /metrics.
func TestWarmStartMapped(t *testing.T) {
	g := gen.GNM(500, 4000, 11)
	path := filepath.Join(t.TempDir(), "g.rngm")
	if err := extmem.SaveMapped(path, graph.BuildView(g)); err != nil {
		t.Fatalf("SaveMapped: %v", err)
	}

	srv, ts := newTestServer(t, Config{}) // file IO off: warm start still works
	if err := srv.WarmStart("main", path); err != nil {
		t.Fatal(err)
	}

	r := query(t, ts.URL, "main", "ls")
	if len(r.Rows) != 1 || !strings.Contains(r.Rows[0][1], "mgraph") {
		t.Fatalf("warm-started session lists %v, want one mgraph binding", r.Rows)
	}
	r = query(t, ts.URL, "main", "algo g wcc")
	if !strings.Contains(r.Message, "component") {
		t.Fatalf("wcc over warm-started mapped graph: %q", r.Message)
	}
	query(t, ts.URL, "main", "pagerank PR g")

	if srv.MappedBytes() == 0 {
		t.Fatal("MappedBytes() = 0 after mapped warm start")
	}
	var stats struct {
		MappedBytes int64 `json:"mapped_bytes"`
	}
	if code := doJSON(t, "GET", ts.URL+"/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("/stats: status %d", code)
	}
	if stats.MappedBytes != srv.MappedBytes() {
		t.Fatalf("/stats mapped_bytes = %d, MappedBytes() = %d", stats.MappedBytes, srv.MappedBytes())
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{"ringo_mapped_bytes", "ringo_extmem_blocks_scanned_total", "ringo_extmem_blocks_skipped_total"} {
		if !strings.Contains(string(body), name) {
			t.Fatalf("/metrics is missing %s", name)
		}
	}

	// A corrupt image must fail and leave no half-started session.
	bad := filepath.Join(t.TempDir(), "bad.rngm")
	if err := writeTruncated(path, bad); err != nil {
		t.Fatal(err)
	}
	if err := srv.WarmStart("other", bad); err == nil {
		t.Fatal("warm start from a truncated RNGM image succeeded")
	}
	for _, id := range srv.SessionIDs() {
		if id == "other" {
			t.Fatal("failed mapped warm start left session behind")
		}
	}
}

// TestMappedGraphGatedVerbs checks that savemapped joins the file-IO gate:
// without -allow-file-io a server refuses it like the other file verbs.
func TestMappedGraphGatedVerbs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, ts.URL, "s", "gen rmat E 6 60 1")
	query(t, ts.URL, "s", "tograph G E src dst")

	var out struct {
		Error string `json:"error"`
	}
	code := doJSON(t, "POST", ts.URL+"/sessions/s/query",
		map[string]string{"cmd": "savemapped G /tmp/never.rngm"}, &out)
	if code == http.StatusOK {
		t.Fatal("savemapped ran on a server without -allow-file-io")
	}
	if !strings.Contains(out.Error, "savemapped") {
		t.Fatalf("gate error %q does not name savemapped", out.Error)
	}
}
