package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ringo/internal/repl"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func query(t *testing.T, base, session, cmd string) *repl.Result {
	t.Helper()
	var res repl.Result
	code := doJSON(t, "POST", base+"/sessions/"+session+"/query", map[string]string{"cmd": cmd}, &res)
	if code != http.StatusOK {
		t.Fatalf("query %q on %s: status %d", cmd, session, code)
	}
	return &res
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Empty listing is an array, not null.
	resp, err := http.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	_, _ = raw.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(raw.String(), `"sessions":[]`) {
		t.Fatalf("empty listing = %s", raw.String())
	}

	// A malformed create body is a 400, not a silently generated session.
	req, _ := http.NewRequest("POST", ts.URL+"/sessions", strings.NewReader("{bad"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed create: status %d", resp.StatusCode)
	}

	var created struct{ ID string }
	if code := doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "alice"}, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.ID != "alice" {
		t.Fatalf("created id = %q", created.ID)
	}
	// Duplicate name conflicts.
	if code := doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "alice"}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate create: status %d", code)
	}
	// Anonymous create gets a generated id.
	if code := doJSON(t, "POST", ts.URL+"/sessions", nil, &created); code != http.StatusCreated {
		t.Fatalf("anon create: status %d", code)
	}
	if created.ID == "" || created.ID == "alice" {
		t.Fatalf("generated id = %q", created.ID)
	}

	query(t, ts.URL, "alice", "gen rmat E 6 40 1")
	var detail struct {
		Objects []struct {
			Name, Kind, Summary, Provenance string
		}
	}
	if code := doJSON(t, "GET", ts.URL+"/sessions/alice", nil, &detail); code != http.StatusOK {
		t.Fatalf("get session: status %d", code)
	}
	if len(detail.Objects) != 1 || detail.Objects[0].Name != "E" || detail.Objects[0].Kind != "table" {
		t.Fatalf("session objects = %+v", detail.Objects)
	}
	if detail.Objects[0].Provenance != "gen rmat E 6 40 1" {
		t.Fatalf("provenance = %q", detail.Objects[0].Provenance)
	}

	var listing struct {
		Sessions []struct {
			ID      string
			Objects int
		}
	}
	doJSON(t, "GET", ts.URL+"/sessions", nil, &listing)
	if len(listing.Sessions) != 2 {
		t.Fatalf("sessions = %+v", listing.Sessions)
	}

	if code := doJSON(t, "DELETE", ts.URL+"/sessions/alice", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/sessions/alice", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/sessions/alice/query", map[string]string{"cmd": "ls"}, nil); code != http.StatusNotFound {
		t.Fatalf("query on deleted session: status %d", code)
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	// Bad command -> 400 with an error payload.
	var e struct{ Error string }
	if code := doJSON(t, "POST", ts.URL+"/sessions/s/query", map[string]string{"cmd": "bogus"}, &e); code != http.StatusBadRequest {
		t.Fatalf("bogus cmd: status %d", code)
	}
	if !strings.Contains(e.Error, "unknown command") {
		t.Fatalf("error payload = %q", e.Error)
	}
	// Empty command -> 400.
	if code := doJSON(t, "POST", ts.URL+"/sessions/s/query", map[string]string{"cmd": "  "}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty cmd: status %d", code)
	}
	// File-touching verbs are rejected over HTTP unless opted in.
	for _, cmd := range []string{"save X /tmp/out.tsv", "load X /etc/passwd a:string", "loadgraph X /etc/passwd"} {
		if code := doJSON(t, "POST", ts.URL+"/sessions/s/query", map[string]string{"cmd": cmd}, &e); code != http.StatusBadRequest {
			t.Fatalf("file verb %q: status %d", cmd, code)
		}
		if !strings.Contains(e.Error, "file access is disabled") {
			t.Fatalf("file verb %q error = %q", cmd, e.Error)
		}
	}
	srvFiles, _ := newTestServer(t, Config{AllowFileIO: true})
	if _, err := srvFiles.CreateSession("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := srvFiles.Eval("f", "loadgraph X /nonexistent"); err == nil || strings.Contains(err.Error(), "disabled") {
		t.Fatalf("AllowFileIO server rejected file verb: %v", err)
	}
	// Session cap.
	srv2, _ := newTestServer(t, Config{MaxSessions: 1})
	if _, err := srv2.CreateSession("one"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.CreateSession("two"); err == nil {
		t.Fatal("session cap not enforced")
	}
}

// TestEvalRecoversPanics: a panicking evaluation must come back as an
// error on the querying client, not crash the server (job workers have no
// net/http recovery above them).
func TestEvalRecoversPanics(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	panics := true
	srv.testHookQueryBarrier = func(string, bool) {
		if panics {
			panics = false
			panic("boom")
		}
	}
	var e struct{ Error string }
	if code := doJSON(t, "POST", ts.URL+"/sessions/s/query", map[string]string{"cmd": "ls"}, &e); code != http.StatusInternalServerError {
		t.Fatalf("panicking query: status %d, want 500", code)
	}
	if !strings.Contains(e.Error, "internal error") {
		t.Fatalf("panicking query error = %q", e.Error)
	}
	// The session lock was released on the way out: the session still works.
	srv.testHookQueryBarrier = nil
	if r := query(t, ts.URL, "s", "ls"); r.Message != "(workspace empty)" {
		t.Fatalf("session broken after panic: %+v", r)
	}

	// Same through the async path: the worker survives.
	panics = true
	srv.testHookQueryBarrier = func(string, bool) {
		if panics {
			panics = false
			panic("boom")
		}
	}
	var j JobView
	doJSON(t, "POST", ts.URL+"/sessions/s/jobs", map[string]string{"cmd": "gen rmat E 6 30 1"}, &j)
	failed := waitState(t, ts.URL, j.ID, JobFailed)
	if !strings.Contains(failed.Error, "internal error") {
		t.Fatalf("panicking job error = %q", failed.Error)
	}
	srv.testHookQueryBarrier = nil
	doJSON(t, "POST", ts.URL+"/sessions/s/jobs", map[string]string{"cmd": "gen rmat E 6 30 1"}, &j)
	if done := waitState(t, ts.URL, j.ID, JobDone); done.Result == nil {
		t.Fatal("worker dead after panicking job")
	}
}

// TestCloseFailsQueuedJobsWithoutRunningThem: shutdown lets the in-flight
// job finish but must not wait out the queued backlog.
func TestCloseFailsQueuedJobsWithoutRunningThem(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, ts.URL, "s", "gen rmat E 7 100 1")
	query(t, ts.URL, "s", "tograph G E src dst")

	release := make(chan struct{})
	var gate sync.Once
	srv.testHookQueryBarrier = func(_ string, readOnly bool) {
		if !readOnly {
			gate.Do(func() { <-release })
		}
	}
	var j1, j2 JobView
	doJSON(t, "POST", ts.URL+"/sessions/s/jobs", map[string]string{"cmd": "pagerank PR G"}, &j1)
	waitState(t, ts.URL, j1.ID, JobRunning)
	doJSON(t, "POST", ts.URL+"/sessions/s/jobs", map[string]string{"cmd": "pagerank PR2 G"}, &j2)

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	// Close is initiated (closed flag set, queue closed) while j1 is still
	// blocked; give it a moment, then let j1 finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return")
	}
	v1, _ := srv.jobs.get(j1.ID)
	if s := v1.snapshot(); s.State != JobDone {
		t.Fatalf("in-flight job state = %q, want done", s.State)
	}
	v2, _ := srv.jobs.get(j2.ID)
	if s := v2.snapshot(); s.State != JobFailed || !strings.Contains(s.Error, "server closed") {
		t.Fatalf("queued job state = %q (%q), want failed/server closed", s.State, s.Error)
	}
	// New submissions are refused.
	sess, _ := srv.session("s")
	if _, err := srv.jobs.submit(sess, "ls", nil); err == nil {
		t.Fatal("submit after close succeeded")
	}
}

// TestJobBoundToSessionInstance: a queued job must not run in a same-named
// session created after the original was dropped.
func TestJobBoundToSessionInstance(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, ts.URL, "s", "gen rmat E 7 100 1")
	query(t, ts.URL, "s", "tograph G E src dst")

	// Only the first mutating eval blocks (j1); the recreated session's
	// own queries must pass through, so a sync.Once (whose Do blocks
	// concurrent callers) cannot be used here.
	release := make(chan struct{})
	var gated atomic.Bool
	srv.testHookQueryBarrier = func(_ string, readOnly bool) {
		if !readOnly && gated.CompareAndSwap(false, true) {
			<-release
		}
	}
	// j1 occupies the single worker; j2 queues, then its session is
	// dropped and recreated under the same id.
	var j1, j2 JobView
	doJSON(t, "POST", ts.URL+"/sessions/s/jobs", map[string]string{"cmd": "pagerank PR G"}, &j1)
	waitState(t, ts.URL, j1.ID, JobRunning)
	doJSON(t, "POST", ts.URL+"/sessions/s/jobs", map[string]string{"cmd": "rm E"}, &j2)
	doJSON(t, "DELETE", ts.URL+"/sessions/s", nil, nil)
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, ts.URL, "s", "gen rmat E 6 30 9")
	close(release)

	failed := waitState(t, ts.URL, j2.ID, JobFailed)
	if !strings.Contains(failed.Error, "dropped") {
		t.Fatalf("job 2 error = %q", failed.Error)
	}
	// The newcomer's E survived.
	if r := query(t, ts.URL, "s", "ls"); len(r.Rows) != 1 || r.Rows[0][0] != "E" {
		t.Fatalf("new session workspace = %+v", r.Rows)
	}
}

func TestSessionIDValidationAndCachePurge(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	for _, bad := range []string{"a/b", "a b", "..%2f", strings.Repeat("x", 65)} {
		if code := doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": bad}, nil); code != http.StatusBadRequest {
			t.Errorf("create %q: status %d, want 400", bad, code)
		}
	}
	// Full server answers 503, not 409.
	_, tsFull := newTestServer(t, Config{MaxSessions: 1})
	doJSON(t, "POST", tsFull.URL+"/sessions", nil, nil)
	if code := doJSON(t, "POST", tsFull.URL+"/sessions", nil, nil); code != http.StatusServiceUnavailable {
		t.Errorf("create on full server: status %d, want 503", code)
	}
	// Dropping a session purges its cache entries.
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, ts.URL, "s", "gen rmat E 8 300 1")
	query(t, ts.URL, "s", "tograph G E src dst")
	query(t, ts.URL, "s", "algo G wcc")
	if _, _, size := srv.CacheStats(); size != 1 {
		t.Fatalf("cache size = %d, want 1", size)
	}
	srv.DropSession("s")
	if _, _, size := srv.CacheStats(); size != 0 {
		t.Fatalf("cache size after drop = %d, want 0", size)
	}
}

// TestRecreatedSessionDoesNotInheritCache guards against fingerprint reuse:
// a dropped-and-recreated session id starts a fresh workspace whose version
// clock repeats, so its cache namespace must be new.
func TestRecreatedSessionDoesNotInheritCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, ts.URL, "s", "gen rmat E 8 300 1")
	query(t, ts.URL, "s", "tograph G E src dst")
	query(t, ts.URL, "s", "algo G wcc")
	if r := query(t, ts.URL, "s", "algo G wcc"); !r.Cached {
		t.Fatal("warm-up re-query not cached")
	}
	if !srv.DropSession("s") {
		t.Fatal("drop failed")
	}
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	// Different data under the same object names and (restarted) versions.
	query(t, ts.URL, "s", "gen rmat E 8 300 99")
	query(t, ts.URL, "s", "tograph G E src dst")
	if r := query(t, ts.URL, "s", "algo G wcc"); r.Cached {
		t.Fatal("recreated session served the old instance's cache entry")
	}
}

// TestManyConcurrentSessions drives 8 sessions in parallel through the
// full analytics flow; under -race this exercises the per-session locks,
// the shared cache and the workspace locking together.
func TestManyConcurrentSessions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const n = 8
	for i := 0; i < n; i++ {
		doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": fmt.Sprintf("u%d", i)}, nil)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("u%d", i)
			// Different seeds so sessions hold genuinely different data.
			r := query(t, ts.URL, id, fmt.Sprintf("gen rmat E 8 %d %d", 200+i, i+1))
			if want := fmt.Sprintf("E: %d rows", 200+i); r.Message != want {
				t.Errorf("%s: %q, want %q", id, r.Message, want)
			}
			query(t, ts.URL, id, "tograph G E src dst")
			query(t, ts.URL, id, "pagerank PR G")
			query(t, ts.URL, id, "pagerank PR2 G")
			if r := query(t, ts.URL, id, "top PR 3"); len(r.Rows) != 3 {
				t.Errorf("%s: top rows = %d", id, len(r.Rows))
			}
			if r := query(t, ts.URL, id, "ls"); len(r.Rows) != 4 {
				t.Errorf("%s: ls rows = %d", id, len(r.Rows))
			}
		}(i)
	}
	wg.Wait()
}

// TestParallelReadsOverlap proves two read-only queries on one session hold
// the session lock simultaneously: each reader blocks inside the lock until
// the other arrives, which can only succeed if the lock is shared.
func TestParallelReadsOverlap(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, ts.URL, "s", "gen rmat E 7 100 1")
	query(t, ts.URL, "s", "tograph G E src dst")

	var mu sync.Mutex
	inside := 0
	bothIn := make(chan struct{})
	srv.testHookQueryBarrier = func(_ string, readOnly bool) {
		if !readOnly {
			return
		}
		mu.Lock()
		inside++
		if inside == 2 {
			close(bothIn)
		}
		mu.Unlock()
		select {
		case <-bothIn:
		case <-time.After(10 * time.Second):
			t.Error("second reader never entered the lock: reads are serialized")
		}
	}
	defer func() { srv.testHookQueryBarrier = nil }()

	var wg sync.WaitGroup
	for _, cmd := range []string{"algo G wcc", "show E 3"} {
		wg.Add(1)
		go func(cmd string) {
			defer wg.Done()
			query(t, ts.URL, "s", cmd)
		}(cmd)
	}
	wg.Wait()
}

// TestCachedPageRankRequery is acceptance criterion (b): a repeated
// PageRank over an unchanged graph is served from the LRU without
// recomputation, observable through the server's hit counter.
func TestCachedPageRankRequery(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, ts.URL, "s", "gen rmat E 9 800 3")
	query(t, ts.URL, "s", "tograph G E src dst")

	r1 := query(t, ts.URL, "s", "pagerank PR G")
	if r1.Cached {
		t.Fatal("first pagerank cached")
	}
	hits0, _, _ := srv.CacheStats()
	r2 := query(t, ts.URL, "s", "pagerank PR2 G")
	hits1, _, _ := srv.CacheStats()
	if !r2.Cached {
		t.Fatal("re-query not served from cache")
	}
	if hits1 != hits0+1 {
		t.Fatalf("cache hits %d -> %d, want +1", hits0, hits1)
	}
	if r2.ElapsedNS != 0 {
		t.Fatal("cached result reports compute time")
	}

	// Sessions do not share each other's entries: the same commands in a
	// fresh session miss.
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "other"}, nil)
	query(t, ts.URL, "other", "gen rmat E 9 800 3")
	query(t, ts.URL, "other", "tograph G E src dst")
	if r := query(t, ts.URL, "other", "pagerank PR G"); r.Cached {
		t.Fatal("cache entry leaked across sessions")
	}

	// Rebinding the graph invalidates.
	query(t, ts.URL, "s", "tograph G E src dst")
	if r := query(t, ts.URL, "s", "pagerank PR3 G"); r.Cached {
		t.Fatal("stale cache entry served after graph rebind")
	}

	// /stats reports the counters.
	var stats struct {
		Sessions int
		Cache    struct {
			Hits, Misses uint64
			Entries      int
		}
	}
	doJSON(t, "GET", ts.URL+"/stats", nil, &stats)
	if stats.Sessions != 2 || stats.Cache.Hits == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestAsyncJobLifecycle is acceptance criterion (c): a job transitions
// queued -> running -> done and its result stays retrievable. The query
// barrier hook holds the job in "running" long enough to observe it, and
// holds the worker pool (size 1) busy so a second job is observably
// "queued".
func TestAsyncJobLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, ts.URL, "s", "gen rmat E 8 300 2")
	query(t, ts.URL, "s", "tograph G E src dst")

	release := make(chan struct{})
	var gate sync.Once
	srv.testHookQueryBarrier = func(_ string, readOnly bool) {
		if !readOnly {
			gate.Do(func() { <-release })
		}
	}

	var j1, j2 JobView
	if code := doJSON(t, "POST", ts.URL+"/sessions/s/jobs", map[string]string{"cmd": "pagerank PR G"}, &j1); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if j1.State != JobQueued && j1.State != JobRunning {
		t.Fatalf("fresh job state = %q", j1.State)
	}
	doJSON(t, "POST", ts.URL+"/sessions/s/jobs", map[string]string{"cmd": "pagerank PR2 G"}, &j2)

	// With one worker blocked on the barrier, job 1 must reach running and
	// job 2 must sit queued.
	waitState(t, ts.URL, j1.ID, JobRunning)
	var v JobView
	doJSON(t, "GET", ts.URL+"/jobs/"+j2.ID, nil, &v)
	if v.State != JobQueued {
		t.Fatalf("job 2 state = %q, want queued", v.State)
	}

	close(release)
	done1 := waitState(t, ts.URL, j1.ID, JobDone)
	if done1.Result == nil || done1.Result.Bound != "PR" {
		t.Fatalf("job 1 result = %+v", done1.Result)
	}
	if done1.Started == nil || done1.Finished == nil {
		t.Fatal("job 1 missing timestamps")
	}
	done2 := waitState(t, ts.URL, j2.ID, JobDone)
	if done2.Result == nil || !done2.Result.Cached {
		t.Fatalf("job 2 should have been served from cache: %+v", done2.Result)
	}

	// The result stays retrievable after completion, and the scores are
	// usable in subsequent queries.
	doJSON(t, "GET", ts.URL+"/jobs/"+j1.ID, nil, &v)
	if v.State != JobDone || v.Result == nil {
		t.Fatalf("job 1 after completion = %+v", v)
	}
	if r := query(t, ts.URL, "s", "top PR 3"); len(r.Rows) != 3 {
		t.Fatalf("top over job-bound scores: %d rows", len(r.Rows))
	}

	// Failed job: bad command reaches a terminal failed state with the
	// engine's error.
	var jf JobView
	doJSON(t, "POST", ts.URL+"/sessions/s/jobs", map[string]string{"cmd": "pagerank X missing"}, &jf)
	failed := waitState(t, ts.URL, jf.ID, JobFailed)
	if !strings.Contains(failed.Error, "missing") {
		t.Fatalf("failed job error = %q", failed.Error)
	}

	// Job listing filters by session.
	var list struct{ Jobs []JobView }
	doJSON(t, "GET", ts.URL+"/jobs?session=s", nil, &list)
	if len(list.Jobs) != 3 {
		t.Fatalf("job list = %d entries, want 3", len(list.Jobs))
	}
	doJSON(t, "GET", ts.URL+"/jobs?session=nope", nil, &list)
	if len(list.Jobs) != 0 {
		t.Fatalf("filtered job list = %d entries, want 0", len(list.Jobs))
	}

	// Unknown job and unknown session 404.
	if code := doJSON(t, "GET", ts.URL+"/jobs/nosuch", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/sessions/nosuch/jobs", map[string]string{"cmd": "ls"}, nil); code != http.StatusNotFound {
		t.Fatalf("job on unknown session: status %d", code)
	}
}

func waitState(t *testing.T, base, jobID, want string) JobView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var v JobView
		doJSON(t, "GET", base+"/jobs/"+jobID, nil, &v)
		if v.State == want {
			return v
		}
		if v.State == JobDone || v.State == JobFailed || time.Now().After(deadline) {
			t.Fatalf("job %s state = %q (error %q), want %q", jobID, v.State, v.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAuthToken(t *testing.T) {
	_, ts := newTestServer(t, Config{AuthToken: "sesame"})
	// No token, wrong token -> 401.
	for _, hdr := range []string{"", "Bearer wrong", "sesame"} {
		req, _ := http.NewRequest("GET", ts.URL+"/stats", nil)
		if hdr != "" {
			req.Header.Set("Authorization", hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("auth %q: status %d, want 401", hdr, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest("GET", ts.URL+"/stats", nil)
	req.Header.Set("Authorization", "Bearer sesame")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid token: status %d", resp.StatusCode)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewLRU(2)
	c.Put("a", repl.CachedResult{Message: "a"})
	c.Put("b", repl.CachedResult{Message: "b"})
	if _, ok := c.Get("a"); !ok { // refresh a; b is now oldest
		t.Fatal("a missing")
	}
	c.Put("c", repl.CachedResult{Message: "c"})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite refresh")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	hits, misses, size := c.Stats()
	if size != 2 || hits != 3 || misses != 1 {
		t.Fatalf("stats: hits=%d misses=%d size=%d", hits, misses, size)
	}
	// Updating an existing key must not evict.
	c.Put("c", repl.CachedResult{Message: "c2"})
	if v, ok := c.Get("a"); !ok || v.Message != "a" {
		t.Fatal("update of existing key evicted another entry")
	}
}

// TestSnapshotRestoreEndpoints drives the full durability path over HTTP:
// build a session, snapshot it to disk, restore it into another session,
// and check the restored objects answer queries.
func TestSnapshotRestoreEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{AllowFileIO: true})
	path := t.TempDir() + "/ws.rsnp"

	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "src"}, nil)
	query(t, ts.URL, "src", "gen rmat E 7 120 3")
	query(t, ts.URL, "src", "tograph G E src dst")
	query(t, ts.URL, "src", "pagerank PR G")

	var snapResp struct {
		Session string `json:"session"`
		Path    string `json:"path"`
		Objects int    `json:"objects"`
	}
	code := doJSON(t, "POST", ts.URL+"/sessions/src/snapshot", map[string]string{"path": path}, &snapResp)
	if code != http.StatusOK || snapResp.Objects != 3 {
		t.Fatalf("snapshot: status %d resp %+v", code, snapResp)
	}

	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "dst"}, nil)
	var restResp struct {
		Objects int `json:"objects"`
	}
	code = doJSON(t, "POST", ts.URL+"/sessions/dst/restore", map[string]string{"path": path}, &restResp)
	if code != http.StatusOK || restResp.Objects != 3 {
		t.Fatalf("restore: status %d resp %+v", code, restResp)
	}
	r := query(t, ts.URL, "dst", "top PR 5")
	if len(r.Rows) != 5 {
		t.Fatalf("top over restored session: %d rows", len(r.Rows))
	}

	// Unknown session and bad bodies map to clean statuses.
	if code := doJSON(t, "POST", ts.URL+"/sessions/nope/snapshot", map[string]string{"path": path}, nil); code != http.StatusNotFound {
		t.Fatalf("snapshot of unknown session: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/sessions/dst/restore", map[string]string{"path": path + ".missing"}, nil); code != http.StatusBadRequest {
		t.Fatalf("restore of missing file: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/sessions/dst/restore", map[string]string{}, nil); code != http.StatusBadRequest {
		t.Fatalf("restore with empty path: status %d", code)
	}
}

func TestSnapshotEndpointsGatedOnFileIO(t *testing.T) {
	_, ts := newTestServer(t, Config{}) // AllowFileIO off
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	for _, ep := range []string{"/sessions/s/snapshot", "/sessions/s/restore"} {
		if code := doJSON(t, "POST", ts.URL+ep, map[string]string{"path": "/tmp/x"}, nil); code != http.StatusForbidden {
			t.Fatalf("%s without -allow-file-io: status %d", ep, code)
		}
	}
	// The repl-level verbs are refused through /query as well.
	var out map[string]any
	if code := doJSON(t, "POST", ts.URL+"/sessions/s/query", map[string]string{"cmd": "snapshot /tmp/x"}, &out); code != http.StatusBadRequest {
		t.Fatalf("snapshot verb without file IO: status %d (%v)", code, out)
	}
}

// TestRestorePurgesSessionCache: results cached against pre-restore
// fingerprints must not be served after a restore.
func TestRestorePurgesSessionCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{AllowFileIO: true})
	path := t.TempDir() + "/ws.rsnp"

	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, ts.URL, "s", "gen rmat E 7 120 3")
	query(t, ts.URL, "s", "tograph G E src dst")
	code := doJSON(t, "POST", ts.URL+"/sessions/s/snapshot", map[string]string{"path": path}, nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot: status %d", code)
	}

	// Prime the cache, prove a repeat hits it.
	query(t, ts.URL, "s", "algo G wcc")
	if r := query(t, ts.URL, "s", "algo G wcc"); !r.Cached {
		t.Fatal("repeat algo not served from cache")
	}
	_, _, sizeBefore := srv.CacheStats()
	if sizeBefore == 0 {
		t.Fatal("cache empty after priming")
	}

	code = doJSON(t, "POST", ts.URL+"/sessions/s/restore", map[string]string{"path": path}, nil)
	if code != http.StatusOK {
		t.Fatalf("restore: status %d", code)
	}
	if _, _, size := srv.CacheStats(); size != 0 {
		t.Fatalf("cache holds %d entries after restore, want 0", size)
	}
	if r := query(t, ts.URL, "s", "algo G wcc"); r.Cached {
		t.Fatal("stale cache entry served after restore")
	}
}

// TestRestoreVerbPurgesSessionCache: the repl-level restore verb through
// /query must reclaim the session's cache entries just like the endpoint.
func TestRestoreVerbPurgesSessionCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{AllowFileIO: true})
	path := t.TempDir() + "/ws.rsnp"

	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, ts.URL, "s", "gen rmat E 7 120 3")
	query(t, ts.URL, "s", "tograph G E src dst")
	query(t, ts.URL, "s", "snapshot "+path)
	query(t, ts.URL, "s", "algo G wcc")
	if _, _, size := srv.CacheStats(); size == 0 {
		t.Fatal("cache empty after priming")
	}
	query(t, ts.URL, "s", "restore "+path)
	if _, _, size := srv.CacheStats(); size != 0 {
		t.Fatalf("cache holds %d entries after restore verb, want 0", size)
	}
}

// TestWarmStart exercises the -restore flag's code path: a fresh server
// restores a snapshot into a named session before serving.
func TestWarmStart(t *testing.T) {
	path := t.TempDir() + "/ws.rsnp"
	{
		_, ts := newTestServer(t, Config{AllowFileIO: true})
		doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
		query(t, ts.URL, "s", "gen rmat E 7 120 3")
		query(t, ts.URL, "s", "tograph G E src dst")
		query(t, ts.URL, "s", "pagerank PR G")
		if code := doJSON(t, "POST", ts.URL+"/sessions/s/snapshot", map[string]string{"path": path}, nil); code != http.StatusOK {
			t.Fatalf("snapshot: status %d", code)
		}
	}

	srv, ts := newTestServer(t, Config{}) // file IO off: warm start still works
	if err := srv.WarmStart("main", path); err != nil {
		t.Fatal(err)
	}
	r := query(t, ts.URL, "main", "top PR 5")
	if len(r.Rows) != 5 {
		t.Fatalf("top over warm-started session: %d rows", len(r.Rows))
	}
	r = query(t, ts.URL, "main", "ls")
	if len(r.Rows) != 3 {
		t.Fatalf("ls over warm-started session: %d objects", len(r.Rows))
	}

	// A bad snapshot path must fail and leave no half-restored session.
	if err := srv.WarmStart("other", path+".missing"); err == nil {
		t.Fatal("warm start from missing file succeeded")
	}
	for _, id := range srv.SessionIDs() {
		if id == "other" {
			t.Fatal("failed warm start left session behind")
		}
	}
}

// TestViewCacheStatsOnServer checks the second cache layer: distinct
// analytics over one unchanged graph share its CSR view (hits climb), the
// /stats endpoint surfaces the counters, and disabling the per-session
// view cache via config turns the layer off.
func TestViewCacheStatsOnServer(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, ts.URL, "s", "gen rmat E 9 800 3")
	query(t, ts.URL, "s", "tograph G E src dst")

	// Three different directed analytics: one view build, two view hits
	// (the result cache cannot serve them — the commands differ).
	query(t, ts.URL, "s", "algo G wcc")
	query(t, ts.URL, "s", "algo G scc")
	query(t, ts.URL, "s", "pagerank PR G")
	hits, misses, entries, bytes := srv.ViewCacheStats()
	if misses != 1 || hits != 2 {
		t.Fatalf("view stats: %d hits, %d misses; want 2 hits, 1 miss", hits, misses)
	}
	if entries != 1 || bytes <= 0 {
		t.Fatalf("view stats: %d entries, %d bytes", entries, bytes)
	}

	// An undirected analytic builds the second orientation.
	query(t, ts.URL, "s", "algo G triangles")
	if _, misses, entries, _ = srv.ViewCacheStats(); misses != 2 || entries != 2 {
		t.Fatalf("after triangles: %d misses, %d entries; want 2/2", misses, entries)
	}

	// Rebinding the graph purges its views.
	query(t, ts.URL, "s", "tograph G E src dst")
	if _, _, entries, _ = srv.ViewCacheStats(); entries != 0 {
		t.Fatalf("rebind left %d view entries", entries)
	}

	var stats struct {
		Views struct {
			Hits, Misses uint64
			Entries      int
		}
	}
	doJSON(t, "GET", ts.URL+"/stats", nil, &stats)
	if stats.Views.Misses != 2 || stats.Views.Hits != 2 {
		t.Fatalf("/stats views = %+v", stats.Views)
	}

	// ViewCacheSize < 0 disables the layer entirely.
	srvOff, tsOff := newTestServer(t, Config{ViewCacheSize: -1})
	doJSON(t, "POST", tsOff.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, tsOff.URL, "s", "gen rmat E 8 300 2")
	query(t, tsOff.URL, "s", "tograph G E src dst")
	query(t, tsOff.URL, "s", "algo G wcc")
	query(t, tsOff.URL, "s", "algo G scc")
	if h, m, _, _ := srvOff.ViewCacheStats(); h != 0 || m != 0 {
		t.Fatalf("disabled view cache still counts: %d hits, %d misses", h, m)
	}
}

// TestFingerprintsEndpoint: GET /sessions/{id}/fingerprints must report
// every binding's name#version fingerprint plus a workspace content digest
// that is stable while the workspace is unchanged and moves on any
// mutation — the identity the cluster coordinator compares across primary
// and replicas after a snapshot ship.
func TestFingerprintsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if _, err := srv.CreateSession("fp"); err != nil {
		t.Fatal(err)
	}
	query(t, ts.URL, "fp", "gen rmat E 8 300 7")
	query(t, ts.URL, "fp", "tograph G E src dst")

	var got SessionFingerprints
	if code := doJSON(t, "GET", ts.URL+"/sessions/fp/fingerprints", nil, &got); code != http.StatusOK {
		t.Fatalf("fingerprints: status %d", code)
	}
	if got.Session != "fp" || len(got.Digest) != 16 {
		t.Fatalf("bad report: %+v", got)
	}
	if len(got.Objects) != 2 {
		t.Fatalf("objects = %v, want E and G", got.Objects)
	}
	for _, o := range got.Objects {
		if !strings.Contains(o.Fingerprint, "#") {
			t.Fatalf("object %q fingerprint %q is not name#version", o.Name, o.Fingerprint)
		}
	}

	// Unchanged workspace: identical report.
	var again SessionFingerprints
	doJSON(t, "GET", ts.URL+"/sessions/fp/fingerprints", nil, &again)
	if again.Digest != got.Digest {
		t.Fatalf("digest unstable on unchanged workspace: %s -> %s", got.Digest, again.Digest)
	}

	// Any mutation must move the digest.
	query(t, ts.URL, "fp", "pagerank PR G")
	var after SessionFingerprints
	doJSON(t, "GET", ts.URL+"/sessions/fp/fingerprints", nil, &after)
	if after.Digest == got.Digest {
		t.Fatal("digest did not change after a mutation")
	}
	if len(after.Objects) != 3 {
		t.Fatalf("objects after pagerank = %d, want 3", len(after.Objects))
	}

	// Unknown session: 404.
	if code := doJSON(t, "GET", ts.URL+"/sessions/nope/fingerprints", nil, &struct{}{}); code != http.StatusNotFound {
		t.Fatalf("missing session: status %d, want 404", code)
	}
}
