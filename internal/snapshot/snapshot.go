// Package snapshot serializes an entire Ringo workspace — tables, directed
// and undirected graphs, score maps, and each binding's provenance and
// version — into a single versioned binary file, and restores it. This is
// the durability layer the paper's big-memory service model implies: a
// preprocessed session is saved once and reloaded in seconds on restart
// instead of being rebuilt from raw text inputs.
//
// # File format (little endian)
//
//	magic   "RNGS"
//	version u32 (currently 1)
//	clock   u64   workspace version clock at snapshot time
//	count   u32   number of object frames
//
// followed by one frame per object, in workspace binding order:
//
//	name      u32 length + bytes
//	prov      u32 length + bytes   provenance string ("" if untracked)
//	version   u64                  the binding's workspace version
//	kind      u8                   1 table, 2 graph, 3 ugraph, 4 scores
//	paylen    u64                  payload byte count
//	checksum  u64                  xhash.Checksum64 of the payload bytes
//	payload   paylen bytes
//
// Payloads reuse the per-type binary codecs: tables embed the columnar
// format of table.EncodeBinary (shared string pool, bulk column blocks),
// graphs embed graph.SaveBinary / graph.SaveBinaryUndirected, and score
// maps are key-sorted (i64, f64) pairs behind a u64 count. Every frame is
// independently length-prefixed and checksummed, so corruption is detected
// per object — errors name the failing object — and frames can be encoded
// and decoded in parallel (internal/par), one worker per object.
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"ringo/internal/graph"
	"ringo/internal/par"
	"ringo/internal/table"
	"ringo/internal/xhash"
)

const (
	// Magic identifies a Ringo workspace snapshot file.
	Magic = "RNGS"
	// Version is the current snapshot format version.
	Version = 1

	kindTable  = 1
	kindGraph  = 2
	kindUGraph = 3
	kindScores = 4

	// maxStrLen bounds decoded name/provenance strings; maxObjects bounds
	// the frame count; payloadChunk bounds how much a declared payload
	// length is trusted at a time, so a lying frame fails with a read
	// error instead of an absurd allocation.
	maxStrLen    = 1 << 24
	maxObjects   = 1 << 20
	payloadChunk = 1 << 20
)

// Object is one workspace binding in transit: its name, provenance string,
// version, and exactly one non-nil value field. It mirrors core.Object
// without importing core, so the dependency points outward (core wires
// snapshots into Workspace; this package stays reusable below it).
type Object struct {
	Name       string
	Provenance string
	Version    uint64

	Table  *table.Table
	Graph  *graph.Directed
	UGraph *graph.Undirected
	Scores map[int64]float64
}

func (o *Object) kind() (byte, error) {
	switch {
	case o.Table != nil:
		return kindTable, nil
	case o.Graph != nil:
		return kindGraph, nil
	case o.UGraph != nil:
		return kindUGraph, nil
	case o.Scores != nil:
		return kindScores, nil
	default:
		return 0, fmt.Errorf("snapshot: object %q holds no value", o.Name)
	}
}

// Write serializes objs (with the workspace clock) to w. Object payloads
// are encoded concurrently, one goroutine per par worker, then frames are
// written out in binding order.
func Write(w io.Writer, clock uint64, objs []Object) error {
	payloads := make([][]byte, len(objs))
	errs := make([]error, len(objs))
	par.ForEach(len(objs), func(i int) {
		payloads[i], errs[i] = encodePayload(&objs[i])
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("snapshot: object %q: %w", objs[i].Name, err)
		}
	}

	bw := bufio.NewWriter(w)
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	writeStr := func(s string) error {
		if err := writeU32(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	if err := writeU32(Version); err != nil {
		return err
	}
	if err := writeU64(clock); err != nil {
		return err
	}
	if err := writeU32(uint32(len(objs))); err != nil {
		return err
	}
	for i := range objs {
		o := &objs[i]
		kind, err := o.kind()
		if err != nil {
			return err
		}
		if err := writeStr(o.Name); err != nil {
			return err
		}
		if err := writeStr(o.Provenance); err != nil {
			return err
		}
		if err := writeU64(o.Version); err != nil {
			return err
		}
		if err := bw.WriteByte(kind); err != nil {
			return err
		}
		if err := writeU64(uint64(len(payloads[i]))); err != nil {
			return err
		}
		if err := writeU64(xhash.Checksum64(payloads[i])); err != nil {
			return err
		}
		if _, err := bw.Write(payloads[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodePayload(o *Object) ([]byte, error) {
	var buf bytes.Buffer
	switch {
	case o.Table != nil:
		if err := o.Table.EncodeBinary(&buf); err != nil {
			return nil, err
		}
	case o.Graph != nil:
		if err := graph.SaveBinary(&buf, o.Graph); err != nil {
			return nil, err
		}
	case o.UGraph != nil:
		if err := graph.SaveBinaryUndirected(&buf, o.UGraph); err != nil {
			return nil, err
		}
	case o.Scores != nil:
		encodeScores(&buf, o.Scores)
	default:
		return nil, fmt.Errorf("holds no value")
	}
	return buf.Bytes(), nil
}

// encodeScores writes a score map as a u64 count followed by key-sorted
// (i64 key, f64 value) pairs, so equal maps encode to equal bytes.
func encodeScores(buf *bytes.Buffer, scores map[int64]float64) {
	keys := make([]int64, 0, len(scores))
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(keys)))
	buf.Write(scratch[:])
	for _, k := range keys {
		binary.LittleEndian.PutUint64(scratch[:], uint64(k))
		buf.Write(scratch[:])
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(scores[k]))
		buf.Write(scratch[:])
	}
}

func decodeScores(payload []byte) (map[int64]float64, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("score payload truncated at %d bytes", len(payload))
	}
	n := binary.LittleEndian.Uint64(payload[:8])
	// Divide, don't multiply: 16*n wraps for absurd counts and could slip
	// past an equality check into out-of-range indexing.
	if n > uint64(len(payload)-8)/16 || uint64(len(payload)-8) != 16*n {
		return nil, fmt.Errorf("score payload claims %d entries in %d bytes", n, len(payload))
	}
	scores := make(map[int64]float64, n)
	off := 8
	for i := uint64(0); i < n; i++ {
		k := int64(binary.LittleEndian.Uint64(payload[off:]))
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
		if _, dup := scores[k]; dup {
			return nil, fmt.Errorf("score payload repeats key %d", k)
		}
		scores[k] = v
		off += 16
	}
	return scores, nil
}

// frame is one undecoded object record: header fields plus raw payload.
type frame struct {
	obj      Object // Name/Provenance/Version filled; value nil until decode
	kind     byte
	checksum uint64
	payload  []byte
}

// Read parses a snapshot stream, returning the saved workspace clock and
// the objects in binding order. Frames are read sequentially (the stream
// dictates that) but payloads are decoded and checksum-verified in
// parallel. Any failure names the object whose frame caused it.
func Read(r io.Reader) (clock uint64, objs []Object, err error) {
	br := bufio.NewReader(r)
	var scratch [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	readStr := func(what string) (string, error) {
		n, err := readU32()
		if err != nil {
			return "", fmt.Errorf("reading %s length: %w", what, err)
		}
		if n > maxStrLen {
			return "", fmt.Errorf("%s length %d exceeds limit", what, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", fmt.Errorf("reading %s: %w", what, err)
		}
		return string(buf), nil
	}

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return 0, nil, fmt.Errorf("snapshot: not a Ringo snapshot (magic %q)", magic)
	}
	version, err := readU32()
	if err != nil {
		return 0, nil, fmt.Errorf("snapshot: reading version: %w", err)
	}
	if version != Version {
		return 0, nil, fmt.Errorf("snapshot: unsupported snapshot version %d", version)
	}
	clock, err = readU64()
	if err != nil {
		return 0, nil, fmt.Errorf("snapshot: reading clock: %w", err)
	}
	count, err := readU32()
	if err != nil {
		return 0, nil, fmt.Errorf("snapshot: reading object count: %w", err)
	}
	if count > maxObjects {
		return 0, nil, fmt.Errorf("snapshot: implausible object count %d", count)
	}

	frames := make([]frame, 0, count)
	seen := make(map[string]bool, count)
	for i := uint32(0); i < count; i++ {
		var f frame
		if f.obj.Name, err = readStr("object name"); err != nil {
			return 0, nil, fmt.Errorf("snapshot: frame %d: %w", i, err)
		}
		if f.obj.Provenance, err = readStr("provenance"); err != nil {
			return 0, nil, fmt.Errorf("snapshot: object %q: %w", f.obj.Name, err)
		}
		if seen[f.obj.Name] {
			return 0, nil, fmt.Errorf("snapshot: object %q appears twice", f.obj.Name)
		}
		seen[f.obj.Name] = true
		if f.obj.Version, err = readU64(); err != nil {
			return 0, nil, fmt.Errorf("snapshot: object %q: reading version: %w", f.obj.Name, err)
		}
		if f.kind, err = br.ReadByte(); err != nil {
			return 0, nil, fmt.Errorf("snapshot: object %q: reading kind: %w", f.obj.Name, err)
		}
		payLen, err := readU64()
		if err != nil {
			return 0, nil, fmt.Errorf("snapshot: object %q: reading payload length: %w", f.obj.Name, err)
		}
		if f.checksum, err = readU64(); err != nil {
			return 0, nil, fmt.Errorf("snapshot: object %q: reading checksum: %w", f.obj.Name, err)
		}
		if f.payload, err = readPayload(br, payLen); err != nil {
			return 0, nil, fmt.Errorf("snapshot: object %q: %w", f.obj.Name, err)
		}
		frames = append(frames, f)
	}

	errs := make([]error, len(frames))
	par.ForEach(len(frames), func(i int) {
		errs[i] = frames[i].decode()
	})
	for i, err := range errs {
		if err != nil {
			return 0, nil, fmt.Errorf("snapshot: object %q: %w", frames[i].obj.Name, err)
		}
	}
	objs = make([]Object, len(frames))
	for i := range frames {
		objs[i] = frames[i].obj
	}
	return clock, objs, nil
}

// readPayload reads a declared payload length in bounded chunks: a frame
// lying about its length exhausts the stream and fails cleanly instead of
// provoking one huge up-front allocation.
func readPayload(r io.Reader, n uint64) ([]byte, error) {
	prealloc := n
	if prealloc > payloadChunk {
		prealloc = payloadChunk
	}
	buf := make([]byte, 0, prealloc)
	chunk := make([]byte, payloadChunk)
	for n > 0 {
		want := n
		if want > payloadChunk {
			want = payloadChunk
		}
		if _, err := io.ReadFull(r, chunk[:want]); err != nil {
			return nil, fmt.Errorf("reading payload: %w", err)
		}
		buf = append(buf, chunk[:want]...)
		n -= want
	}
	return buf, nil
}

// decode verifies the frame checksum and decodes the payload into the
// frame's Object value.
func (f *frame) decode() error {
	if got := xhash.Checksum64(f.payload); got != f.checksum {
		return fmt.Errorf("checksum mismatch (stored %016x, computed %016x)", f.checksum, got)
	}
	var err error
	switch f.kind {
	case kindTable:
		f.obj.Table, err = table.DecodeBinary(bytes.NewReader(f.payload))
	case kindGraph:
		f.obj.Graph, err = graph.LoadBinary(bytes.NewReader(f.payload))
	case kindUGraph:
		f.obj.UGraph, err = graph.LoadBinaryUndirected(bytes.NewReader(f.payload))
	case kindScores:
		f.obj.Scores, err = decodeScores(f.payload)
	default:
		return fmt.Errorf("unknown object kind %d", f.kind)
	}
	return err
}
