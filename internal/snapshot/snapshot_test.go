package snapshot

import (
	"bytes"
	"strings"
	"testing"

	"ringo/internal/graph"
	"ringo/internal/table"
)

func sampleObjects(t *testing.T) []Object {
	t.Helper()
	tbl, err := table.New(table.Schema{
		{Name: "User", Type: table.String},
		{Name: "Score", Type: table.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []struct {
		u string
		s int64
	}{{"alice", 3}, {"tab\tin\tvalue", -1}, {"", 0}} {
		if err := tbl.AppendRow(row.u, row.s); err != nil {
			t.Fatal(err)
		}
	}
	g := graph.NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	u := graph.NewUndirected()
	u.AddEdge(10, 20)
	u.AddEdge(20, 30)
	return []Object{
		{Name: "T", Provenance: "load T posts.tsv", Version: 1, Table: tbl},
		{Name: "G", Provenance: "tograph G T src dst", Version: 2, Graph: g},
		{Name: "U", Provenance: "", Version: 3, UGraph: u},
		{Name: "PR", Provenance: "pagerank PR G", Version: 7, Scores: map[int64]float64{1: 0.5, 2: 0.25, 3: 0.25}},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	objs := sampleObjects(t)
	var buf bytes.Buffer
	if err := Write(&buf, 9, objs); err != nil {
		t.Fatal(err)
	}
	clock, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if clock != 9 {
		t.Fatalf("clock = %d, want 9", clock)
	}
	if len(got) != len(objs) {
		t.Fatalf("object count = %d, want %d", len(got), len(objs))
	}
	for i, want := range objs {
		o := got[i]
		if o.Name != want.Name || o.Provenance != want.Provenance || o.Version != want.Version {
			t.Fatalf("object %d header = %+v", i, o)
		}
	}
	tbl := got[0].Table
	if tbl == nil || tbl.NumRows() != 3 {
		t.Fatalf("table not restored: %+v", got[0])
	}
	if v := tbl.Value(0, 1); v != "tab\tin\tvalue" {
		t.Fatalf("string cell = %q", v)
	}
	g := got[1].Graph
	if g == nil || g.NumEdges() != 3 || !g.HasEdge(3, 1) {
		t.Fatalf("graph not restored: %+v", got[1])
	}
	u := got[2].UGraph
	if u == nil || u.NumEdges() != 2 || !u.HasEdge(30, 20) {
		t.Fatalf("ugraph not restored: %+v", got[2])
	}
	sc := got[3].Scores
	if sc == nil || len(sc) != 3 || sc[1] != 0.5 {
		t.Fatalf("scores not restored: %+v", got[3])
	}
}

func TestSnapshotEmptyWorkspace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, 0, nil); err != nil {
		t.Fatal(err)
	}
	clock, objs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if clock != 0 || len(objs) != 0 {
		t.Fatalf("empty round trip = clock %d, %d objects", clock, len(objs))
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	objs := sampleObjects(t)
	var a, b bytes.Buffer
	if err := Write(&a, 9, objs); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, 9, objs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot bytes are not deterministic")
	}
}

func TestSnapshotRejectsValuelessObject(t *testing.T) {
	var buf bytes.Buffer
	err := Write(&buf, 1, []Object{{Name: "empty"}})
	if err == nil || !strings.Contains(err.Error(), `"empty"`) {
		t.Fatalf("valueless object error = %v", err)
	}
}

// TestSnapshotCorruptionNamesObject flips one byte inside each object's
// payload in turn and checks the decode error names that object.
func TestSnapshotCorruptionNamesObject(t *testing.T) {
	objs := sampleObjects(t)
	var buf bytes.Buffer
	if err := Write(&buf, 9, objs); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Locate each payload by re-encoding individually: frame layout is
	// header + name + prov + 8 (version) + 1 (kind) + 8 (paylen) + 8
	// (checksum) + payload.
	off := len(Magic) + 4 + 8 + 4
	for _, o := range objs {
		payload, err := encodePayload(&o)
		if err != nil {
			t.Fatal(err)
		}
		payloadStart := off + 4 + len(o.Name) + 4 + len(o.Provenance) + 8 + 1 + 8 + 8
		mangled := append([]byte(nil), good...)
		mangled[payloadStart+len(payload)/2] ^= 0x40
		_, _, err = Read(bytes.NewReader(mangled))
		if err == nil {
			t.Fatalf("corrupt payload of %q accepted", o.Name)
		}
		if !strings.Contains(err.Error(), `"`+o.Name+`"`) {
			t.Fatalf("error %q does not name object %q", err, o.Name)
		}
		off = payloadStart + len(payload)
	}
}

func TestSnapshotRejectsStructuralCorruption(t *testing.T) {
	objs := sampleObjects(t)
	var buf bytes.Buffer
	if err := Write(&buf, 9, objs); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mangle func(b []byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}},
		{"bad version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4] = 0x63
			return c
		}},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"truncated frame", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-1] }},
		{"absurd object count", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			for i := 16; i < 20; i++ {
				c[i] = 0xff
			}
			return c
		}},
		{"lying payload length", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			// First frame's paylen lives after name "T" and prov.
			off := 20 + 4 + 1 + 4 + len("load T posts.tsv") + 8 + 1
			c[off+4] = 0xff // claim a payload in the terabytes
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Read(bytes.NewReader(tc.mangle(good))); err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
		})
	}
}

// TestDecodeScoresOverflowingCount: a crafted count near 2^60 makes 16*n
// wrap modulo 2^64; the length check must reject it instead of letting the
// decode loop index out of range.
func TestDecodeScoresOverflowingCount(t *testing.T) {
	payload := make([]byte, 8+16) // room for exactly one entry
	n := uint64(1)<<60 + 1        // 16*n mod 2^64 == 16 == len(payload)-8
	for i := 0; i < 8; i++ {
		payload[i] = byte(n >> (8 * i))
	}
	if _, err := decodeScores(payload); err == nil {
		t.Fatal("overflowing score count accepted")
	}
}

func TestSnapshotRejectsDuplicateNames(t *testing.T) {
	objs := []Object{
		{Name: "A", Version: 1, Scores: map[int64]float64{1: 1}},
		{Name: "A", Version: 2, Scores: map[int64]float64{2: 2}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, 2, objs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate names error = %v", err)
	}
}
