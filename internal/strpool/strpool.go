// Package strpool implements an interned string pool. Ringo's column store
// keeps string columns as int32 pool identifiers (§2.3), so string
// comparison, grouping and joining reduce to integer operations and the
// string bytes are stored exactly once per distinct value.
package strpool

// Pool interns strings, assigning each distinct string a dense non-negative
// int32 id in first-seen order. The zero value is ready to use. A Pool is
// safe for concurrent readers (Get, Len, Bytes) but Intern calls must be
// serialized by the caller; table construction interns strings from a single
// loader goroutine, matching Ringo's design.
type Pool struct {
	ids  map[string]int32
	strs []string
}

// New returns an empty pool with capacity hint n.
func New(n int) *Pool {
	return &Pool{
		ids:  make(map[string]int32, n),
		strs: make([]string, 0, n),
	}
}

// Intern returns the id of s, adding it to the pool if unseen.
func (p *Pool) Intern(s string) int32 {
	if p.ids == nil {
		p.ids = make(map[string]int32)
	}
	if id, ok := p.ids[s]; ok {
		return id
	}
	id := int32(len(p.strs))
	p.ids[s] = id
	p.strs = append(p.strs, s)
	return id
}

// Lookup returns the id of s without interning. ok is false if s has never
// been interned; such strings cannot match any stored value, which lets
// predicates over string columns short-circuit.
func (p *Pool) Lookup(s string) (id int32, ok bool) {
	id, ok = p.ids[s]
	return id, ok
}

// Get returns the string with the given id. It panics if id is out of
// range, mirroring slice indexing.
func (p *Pool) Get(id int32) string {
	return p.strs[id]
}

// Len reports the number of distinct interned strings.
func (p *Pool) Len() int {
	return len(p.strs)
}

// Bytes estimates the heap footprint of the pool: string headers plus string
// bytes plus the id map. Used by Table.Bytes for the Table 2 experiment.
func (p *Pool) Bytes() int64 {
	var b int64
	for _, s := range p.strs {
		b += int64(len(s)) + 16 // bytes + string header
	}
	// Map overhead: roughly one bucket entry (string header + int32 + slot
	// bookkeeping) per key.
	b += int64(len(p.ids)) * 32
	return b
}

// Clone returns an independent copy of the pool. Tables share pools
// copy-on-write at the Ringo layer; Clone supports the explicit-copy path.
func (p *Pool) Clone() *Pool {
	q := New(len(p.strs))
	q.strs = append(q.strs, p.strs...)
	for s, id := range p.ids {
		q.ids[s] = id
	}
	return q
}
