package strpool

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestInternDenseIDs(t *testing.T) {
	p := New(4)
	a := p.Intern("alpha")
	b := p.Intern("beta")
	a2 := p.Intern("alpha")
	if a != a2 {
		t.Fatalf("re-intern returned different id: %d vs %d", a, a2)
	}
	if a == b {
		t.Fatal("distinct strings share an id")
	}
	if a != 0 || b != 1 {
		t.Fatalf("ids not dense first-seen order: a=%d b=%d", a, b)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
}

func TestGetRoundTrip(t *testing.T) {
	p := New(0)
	words := []string{"", "x", "hello", "hello", "世界", "x"}
	for _, w := range words {
		id := p.Intern(w)
		if got := p.Get(id); got != w {
			t.Fatalf("Get(Intern(%q)) = %q", w, got)
		}
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want 4 distinct", p.Len())
	}
}

func TestLookup(t *testing.T) {
	p := New(0)
	p.Intern("present")
	if _, ok := p.Lookup("absent"); ok {
		t.Fatal("Lookup found never-interned string")
	}
	id, ok := p.Lookup("present")
	if !ok || p.Get(id) != "present" {
		t.Fatalf("Lookup(present) = (%d,%v)", id, ok)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var p Pool
	if id := p.Intern("zero"); id != 0 {
		t.Fatalf("zero-value pool first id = %d", id)
	}
	if p.Get(0) != "zero" {
		t.Fatal("zero-value pool Get failed")
	}
}

func TestClone(t *testing.T) {
	p := New(0)
	p.Intern("a")
	p.Intern("b")
	q := p.Clone()
	q.Intern("c")
	if p.Len() != 2 {
		t.Fatalf("clone mutation leaked into original: Len=%d", p.Len())
	}
	if q.Len() != 3 {
		t.Fatalf("clone Len = %d, want 3", q.Len())
	}
	if id, ok := q.Lookup("a"); !ok || q.Get(id) != "a" {
		t.Fatal("clone lost original contents")
	}
}

func TestBytesGrowsWithContent(t *testing.T) {
	p := New(0)
	small := p.Bytes()
	for i := 0; i < 100; i++ {
		p.Intern(fmt.Sprintf("string-value-%04d", i))
	}
	if p.Bytes() <= small {
		t.Fatal("Bytes did not grow after interning")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	p := New(0)
	seen := map[string]int32{}
	f := func(s string) bool {
		id := p.Intern(s)
		if prev, ok := seen[s]; ok && prev != id {
			return false
		}
		seen[s] = id
		return p.Get(id) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
