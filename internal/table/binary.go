package table

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Columnar binary table serialization, the table-side counterpart of the
// binary graph format: whole int64/float64 columns are written as
// contiguous little-endian blocks and string columns as pool ids next to a
// single shared string pool, so loading is a handful of bulk reads instead
// of a per-cell text parse. This is the representation workspace snapshots
// embed (see internal/snapshot); unlike TSV it round-trips every string
// value byte-for-byte, including tabs, newlines and empty strings, and it
// preserves persistent row identifiers.
//
// Layout (little endian): magic "RTBL", format version u32, column count
// u32, then per column: name (u32 length + bytes), type u8; row count u64,
// next row id i64, row ids i64×rows; pool: distinct string count u32, then
// per string u32 length + bytes; finally per column in schema order the
// column block (i64×rows for Int and String columns, f64×rows for Float).

const (
	tableBinaryMagic   = "RTBL"
	tableBinaryVersion = 1

	// maxBinaryStrLen bounds a single column name or pool string, and
	// maxBinaryPrealloc bounds trust in decoded element counts: slices
	// start at most this large and grow by append, so a corrupt count
	// fails with a read error instead of an absurd allocation.
	maxBinaryStrLen   = 1 << 24
	maxBinaryPrealloc = 1 << 20
)

// EncodeBinary writes t in the columnar binary table format.
func (t *Table) EncodeBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	writeStr := func(s string) error {
		if err := writeU32(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if _, err := bw.WriteString(tableBinaryMagic); err != nil {
		return err
	}
	if err := writeU32(tableBinaryVersion); err != nil {
		return err
	}
	if err := writeU32(uint32(len(t.cols))); err != nil {
		return err
	}
	for _, c := range t.cols {
		if err := writeStr(c.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(c.Type)); err != nil {
			return err
		}
	}
	if err := writeU64(uint64(t.NumRows())); err != nil {
		return err
	}
	if err := writeU64(uint64(t.nextID)); err != nil {
		return err
	}
	for _, id := range t.rowIDs {
		if err := writeU64(uint64(id)); err != nil {
			return err
		}
	}
	if err := writeU32(uint32(t.pool.Len())); err != nil {
		return err
	}
	for i := 0; i < t.pool.Len(); i++ {
		if err := writeStr(t.pool.Get(int32(i))); err != nil {
			return err
		}
	}
	for i, c := range t.cols {
		if c.Type == Float {
			for _, v := range t.floats[i] {
				if err := writeU64(math.Float64bits(v)); err != nil {
					return err
				}
			}
		} else {
			for _, v := range t.ints[i] {
				if err := writeU64(uint64(v)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// DecodeBinary reads a table written by EncodeBinary. All counts are
// validated against what the stream actually delivers, string-column cells
// are checked against the pool size, and allocations are bounded, so a
// truncated or corrupt stream returns an error instead of panicking.
func DecodeBinary(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	var scratch [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	readStr := func(what string) (string, error) {
		n, err := readU32()
		if err != nil {
			return "", fmt.Errorf("table: reading %s length: %w", what, err)
		}
		if n > maxBinaryStrLen {
			return "", fmt.Errorf("table: %s length %d exceeds limit", what, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", fmt.Errorf("table: reading %s: %w", what, err)
		}
		return string(buf), nil
	}

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("table: reading magic: %w", err)
	}
	if string(magic) != tableBinaryMagic {
		return nil, fmt.Errorf("table: not a Ringo binary table (magic %q)", magic)
	}
	version, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("table: reading version: %w", err)
	}
	if version != tableBinaryVersion {
		return nil, fmt.Errorf("table: unsupported binary table version %d", version)
	}
	nCols, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("table: reading column count: %w", err)
	}
	if nCols == 0 || nCols > maxBinaryPrealloc {
		return nil, fmt.Errorf("table: implausible column count %d", nCols)
	}
	schema := make(Schema, 0, nCols)
	for i := uint32(0); i < nCols; i++ {
		name, err := readStr("column name")
		if err != nil {
			return nil, err
		}
		typ, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("table: reading type of column %q: %w", name, err)
		}
		if Type(typ) != Int && Type(typ) != Float && Type(typ) != String {
			return nil, fmt.Errorf("table: column %q has invalid type %d", name, typ)
		}
		schema = append(schema, Column{Name: name, Type: Type(typ)})
	}
	nRows64, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("table: reading row count: %w", err)
	}
	if nRows64 > math.MaxInt32 {
		return nil, fmt.Errorf("table: implausible row count %d", nRows64)
	}
	nRows := int(nRows64)
	prealloc := nRows
	if prealloc > maxBinaryPrealloc {
		prealloc = maxBinaryPrealloc
	}
	t, err := NewWithCapacity(schema, prealloc)
	if err != nil {
		return nil, err
	}
	nextID, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("table: reading next row id: %w", err)
	}
	t.nextID = int64(nextID)
	maxRowID := int64(-1)
	seenIDs := make(map[int64]bool, prealloc)
	for r := 0; r < nRows; r++ {
		id, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("table: reading row id %d: %w", r, err)
		}
		if seenIDs[int64(id)] {
			return nil, fmt.Errorf("table: row id %d appears twice", int64(id))
		}
		seenIDs[int64(id)] = true
		t.rowIDs = append(t.rowIDs, int64(id))
		if int64(id) > maxRowID {
			maxRowID = int64(id)
		}
	}
	// Duplicate ids above, or a nextID at or below an existing id here,
	// would break the persistent row-identity guarantee: future AppendRow
	// calls could re-issue ids that rows already hold.
	if t.nextID <= maxRowID {
		return nil, fmt.Errorf("table: next row id %d not above max row id %d", t.nextID, maxRowID)
	}
	nStrs, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("table: reading pool size: %w", err)
	}
	for i := uint32(0); i < nStrs; i++ {
		s, err := readStr("pool string")
		if err != nil {
			return nil, err
		}
		if id := t.pool.Intern(s); id != int32(i) {
			return nil, fmt.Errorf("table: pool string %d duplicates string %d", i, id)
		}
	}
	for i, c := range schema {
		for r := 0; r < nRows; r++ {
			v, err := readU64()
			if err != nil {
				return nil, fmt.Errorf("table: reading column %q row %d: %w", c.Name, r, err)
			}
			if c.Type == Float {
				t.floats[i] = append(t.floats[i], math.Float64frombits(v))
				continue
			}
			cell := int64(v)
			if c.Type == String && (cell < 0 || cell >= int64(nStrs)) {
				return nil, fmt.Errorf("table: column %q row %d: string id %d outside pool of %d", c.Name, r, cell, nStrs)
			}
			t.ints[i] = append(t.ints[i], cell)
		}
	}
	return t, nil
}
