package table

import (
	"bytes"
	"strings"
	"testing"
)

func binarySampleTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := New(Schema{
		{Name: "User", Type: String},
		{Name: "Score", Type: Int},
		{Name: "Rank", Type: Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		u string
		s int64
		r float64
	}{
		{"alice", 10, 0.5},
		{"bob\twith\ttabs", -3, 1.25},
		{"", 0, 0},
		{"line\nbreak", 42, -7.5},
		{"alice", 11, 2.5}, // repeated string shares a pool id
	}
	for _, row := range rows {
		if err := tbl.AppendRow(row.u, row.s, row.r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTableBinaryRoundTrip(t *testing.T) {
	tbl := binarySampleTable(t)
	// Filter so surviving row ids are non-contiguous, exercising id
	// preservation.
	sel, err := tbl.Select("Score", GE, int64(0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sel.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != sel.NumRows() || got.NumCols() != sel.NumCols() {
		t.Fatalf("shape = %d×%d, want %d×%d", got.NumRows(), got.NumCols(), sel.NumRows(), sel.NumCols())
	}
	for i, c := range sel.Schema() {
		if got.Schema()[i] != c {
			t.Fatalf("schema[%d] = %+v, want %+v", i, got.Schema()[i], c)
		}
	}
	for r := 0; r < sel.NumRows(); r++ {
		if got.RowIDs()[r] != sel.RowIDs()[r] {
			t.Fatalf("row id %d = %d, want %d", r, got.RowIDs()[r], sel.RowIDs()[r])
		}
		for c := 0; c < sel.NumCols(); c++ {
			if got.Value(c, r) != sel.Value(c, r) {
				t.Fatalf("cell (%d,%d) = %v, want %v", c, r, got.Value(c, r), sel.Value(c, r))
			}
		}
	}
	// New rows must get fresh ids: nextID survives the round trip.
	if err := got.AppendRow("new", int64(1), 1.0); err != nil {
		t.Fatal(err)
	}
	newID := got.RowIDs()[got.NumRows()-1]
	for _, id := range sel.RowIDs() {
		if id == newID {
			t.Fatalf("appended row reused id %d", newID)
		}
	}
}

func TestTableBinaryRejectsCorruptInput(t *testing.T) {
	tbl := binarySampleTable(t)
	var buf bytes.Buffer
	if err := tbl.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name    string
		mangle  func([]byte) []byte
		wantSub string
	}{
		{"empty", func(b []byte) []byte { return nil }, "magic"},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}, "magic"},
		{"bad version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4] = 99
			return c
		}, "version"},
		{"truncated header", func(b []byte) []byte { return b[:6] }, ""},
		{"truncated body", func(b []byte) []byte { return b[:len(b)/2] }, ""},
		{"absurd column count", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[8], c[9], c[10], c[11] = 0xff, 0xff, 0xff, 0xff
			return c
		}, "column count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeBinary(bytes.NewReader(tc.mangle(good)))
			if err == nil {
				t.Fatal("decode of corrupt input succeeded")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestTableBinaryRejectsStaleNextID: a mangled nextID at or below an
// existing row id would let AppendRow re-issue ids rows already hold.
func TestTableBinaryRejectsStaleNextID(t *testing.T) {
	tbl, err := New(Schema{{Name: "S", Type: String}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"a", "b", "c"} {
		if err := tbl.AppendRow(v); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tbl.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	// nextID sits after magic(4) version(4) ncols(4) col{len(4)+"S"(1)+
	// type(1)} nrows(8): bytes [26,34). Zero it.
	b := buf.Bytes()
	for i := 26; i < 34; i++ {
		b[i] = 0
	}
	_, err = DecodeBinary(bytes.NewReader(b))
	if err == nil || !strings.Contains(err.Error(), "next row id") {
		t.Fatalf("stale nextID error = %v", err)
	}

	// Duplicate row ids break row-identity tracking just as badly; copy
	// row 0's id (bytes [34,42)) over row 1's (bytes [42,50)).
	b = append([]byte(nil), buf.Bytes()...)
	copy(b[42:50], b[34:42])
	_, err = DecodeBinary(bytes.NewReader(b))
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate row id error = %v", err)
	}
}

func TestTableBinaryRejectsOutOfRangePoolID(t *testing.T) {
	tbl, err := New(Schema{{Name: "S", Type: String}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow("only"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	// The single string cell is the last 8 bytes; point it outside the pool.
	b := buf.Bytes()
	b[len(b)-8] = 7
	if _, err := DecodeBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("decode accepted string id outside pool")
	}
}
