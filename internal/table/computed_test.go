package table

import "testing"

func TestAddIntColumnFunc(t *testing.T) {
	tbl := postsTable(t)
	users, _ := tbl.IntCol("UserId")
	if err := tbl.AddIntColumnFunc("UserBucket", func(row int) int64 {
		return users[row] / 100
	}); err != nil {
		t.Fatal(err)
	}
	col, err := tbl.IntCol("UserBucket")
	if err != nil {
		t.Fatal(err)
	}
	for row, v := range col {
		if v != users[row]/100 {
			t.Fatalf("row %d: %d != %d", row, v, users[row]/100)
		}
	}
	if err := tbl.AddIntColumnFunc("UserBucket", func(int) int64 { return 0 }); err == nil {
		t.Fatal("duplicate computed column accepted")
	}
}

func TestAddFloatColumnFunc(t *testing.T) {
	tbl := postsTable(t)
	scores, _ := tbl.FloatCol("Score")
	if err := tbl.AddFloatColumnFunc("Half", func(row int) float64 {
		return scores[row] / 2
	}); err != nil {
		t.Fatal(err)
	}
	col, _ := tbl.FloatCol("Half")
	for row, v := range col {
		if v != scores[row]/2 {
			t.Fatalf("row %d: %v", row, v)
		}
	}
	if err := tbl.AddFloatColumnFunc("Half", func(int) float64 { return 0 }); err == nil {
		t.Fatal("duplicate computed column accepted")
	}
}

func TestComputedColumnLargeParallel(t *testing.T) {
	tbl := MustNew(Schema{{"x", Int}})
	const n = 60_000
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(i); err != nil {
			t.Fatal(err)
		}
	}
	x, _ := tbl.IntCol("x")
	if err := tbl.AddIntColumnFunc("sq", func(row int) int64 { return x[row] * x[row] }); err != nil {
		t.Fatal(err)
	}
	sq, _ := tbl.IntCol("sq")
	for _, row := range []int{0, 1, n / 2, n - 1} {
		if sq[row] != int64(row)*int64(row) {
			t.Fatalf("sq[%d] = %d", row, sq[row])
		}
	}
}
