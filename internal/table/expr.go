package table

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// This file implements the string predicate language of Ringo's front-end:
// the paper writes ringo.Select(P, 'Tag=Java'). Predicates are boolean
// combinations of column-constant comparisons:
//
//	Tag = Java
//	Score >= 4 and Type != question
//	(UserId < 100 or UserId > 900) and not Tag = Go
//
// Operators: = == != < <= > >=, connectives: and or not (case-insensitive),
// parentheses for grouping. Values are parsed as int, then float, then
// string; quote with single or double quotes to force a string or include
// spaces.
//
// Parsing produces a predNode tree (pred.go). SelectExpr executes it with
// the vectorized bitmap backend (vector.go); CompileExpr lowers it to the
// per-row closure chain, the compatibility path and equivalence oracle.

// SelectExpr returns the rows satisfying the predicate expression,
// evaluated column-at-a-time over bitmap selection vectors.
func (t *Table) SelectExpr(expr string) (*Table, error) {
	node, err := t.parseExpr(expr)
	if err != nil {
		return nil, err
	}
	return t.selectBitmap(t.evalNode(node)), nil
}

// SelectExprInPlace filters the table in place with a predicate expression,
// reporting the number of rows kept. It honors the same aliasing contract
// as SelectInPlace: column storage is compacted forward (capacity kept) and
// the table's string-pool identity is preserved.
func (t *Table) SelectExprInPlace(expr string) (int, error) {
	node, err := t.parseExpr(expr)
	if err != nil {
		return 0, err
	}
	return t.compactBitmap(t.evalNode(node)), nil
}

// CompileExpr compiles a predicate expression into a per-row function. The
// function is safe for concurrent calls on distinct rows.
func (t *Table) CompileExpr(expr string) (func(row int) bool, error) {
	node, err := t.parseExpr(expr)
	if err != nil {
		return nil, err
	}
	return t.compileNode(node), nil
}

// parseExpr lexes and parses one predicate expression into a resolved tree.
func (t *Table) parseExpr(expr string) (*predNode, error) {
	toks, err := lexExpr(expr)
	if err != nil {
		return nil, err
	}
	p := &exprParser{t: t, toks: toks}
	node, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		// The parser only ever advances pos past tokens it consumed, so
		// pos <= len(toks) always holds; reaching here means pos < len and
		// the index below is in bounds. A dangling connective ("a = 1 and")
		// never lands here — parseTerm reports the missing condition first.
		return nil, fmt.Errorf("table: unexpected %q at end of expression", p.toks[p.pos].text)
	}
	return node, nil
}

type tokKind int

const (
	tokWord tokKind = iota // identifier, bare value, or keyword
	tokNumber
	tokString // quoted
	tokOp     // comparison operator
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
}

func lexExpr(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(s) && s[j] != quote {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("table: unterminated string in expression")
			}
			toks = append(toks, token{tokString, s[i+1 : j]})
			i = j + 1
		case c == '=' || c == '!' || c == '<' || c == '>':
			j := i + 1
			if j < len(s) && s[j] == '=' {
				j++
			}
			op := s[i:j]
			if op == "!" {
				return nil, fmt.Errorf("table: bare '!' in expression; use !=")
			}
			toks = append(toks, token{tokOp, op})
			i = j
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n()=!<>'\"", rune(s[j])) {
				j++
			}
			word := s[i:j]
			kind := tokWord
			if isNumeric(word) {
				kind = tokNumber
			}
			toks = append(toks, token{kind, word})
			i = j
		}
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("table: empty expression")
	}
	return toks, nil
}

func isNumeric(w string) bool {
	if w == "" {
		return false
	}
	start := 0
	if w[0] == '-' || w[0] == '+' {
		start = 1
	}
	if start >= len(w) {
		return false
	}
	for _, r := range w[start:] {
		if !unicode.IsDigit(r) && r != '.' && r != 'e' && r != 'E' && r != '-' && r != '+' {
			return false
		}
	}
	_, errI := strconv.ParseInt(w, 10, 64)
	_, errF := strconv.ParseFloat(w, 64)
	return errI == nil || errF == nil
}

type exprParser struct {
	t    *Table
	toks []token
	pos  int
}

func (p *exprParser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *exprParser) keyword(word string) bool {
	tok, ok := p.peek()
	if ok && tok.kind == tokWord && strings.EqualFold(tok.text, word) {
		p.pos++
		return true
	}
	return false
}

func (p *exprParser) parseOr() (*predNode, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &predNode{kind: predOr, left: left, right: right}
	}
	return left, nil
}

func (p *exprParser) parseAnd() (*predNode, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &predNode{kind: predAnd, left: left, right: right}
	}
	return left, nil
}

func (p *exprParser) parseTerm() (*predNode, error) {
	if p.keyword("not") {
		inner, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return &predNode{kind: predNot, left: inner}, nil
	}
	tok, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("table: expression ended where a condition was expected")
	}
	if tok.kind == tokLParen {
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if tok, ok := p.peek(); !ok || tok.kind != tokRParen {
			return nil, fmt.Errorf("table: missing ')'")
		}
		p.pos++
		return inner, nil
	}
	return p.parseComparison()
}

func (p *exprParser) parseComparison() (*predNode, error) {
	col, ok := p.peek()
	if !ok || (col.kind != tokWord && col.kind != tokString) {
		return nil, fmt.Errorf("table: expected a column name, got %q", col.text)
	}
	p.pos++
	opTok, ok := p.peek()
	if !ok || opTok.kind != tokOp {
		return nil, fmt.Errorf("table: expected a comparison operator after %q", col.text)
	}
	p.pos++
	var op CmpOp
	switch opTok.text {
	case "=", "==":
		op = EQ
	case "!=":
		op = NE
	case "<":
		op = LT
	case "<=":
		op = LE
	case ">":
		op = GT
	case ">=":
		op = GE
	default:
		return nil, fmt.Errorf("table: unknown operator %q", opTok.text)
	}
	valTok, ok := p.peek()
	if !ok || valTok.kind == tokOp || valTok.kind == tokLParen || valTok.kind == tokRParen {
		return nil, fmt.Errorf("table: expected a value after %q %s", col.text, opTok.text)
	}
	p.pos++

	// The constant's Go type must match the column; coerce by column type.
	i := p.t.ColIndex(col.text)
	if i < 0 {
		return nil, fmt.Errorf("table: no column %q", col.text)
	}
	var val any
	switch p.t.cols[i].Type {
	case Int:
		n, err := strconv.ParseInt(valTok.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("table: column %q is int, value %q is not", col.text, valTok.text)
		}
		val = n
	case Float:
		f, err := strconv.ParseFloat(valTok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("table: column %q is float, value %q is not", col.text, valTok.text)
		}
		val = f
	default:
		val = valTok.text
	}
	leaf, err := p.t.resolveLeaf(col.text, op, val)
	if err != nil {
		return nil, err
	}
	return &predNode{kind: predLeaf, leaf: leaf}, nil
}
