package table

import "testing"

// FuzzSelectExpr drives the expression lexer, parser and both execution
// backends with arbitrary strings and requires them to agree: the compiled
// closure and the vectorized bitmap evaluator either both reject the
// expression, or both accept it and select exactly the same rows. This is
// the contract that lets SelectExpr route through the vectorized backend
// without changing what any caller observes, and it hardens the parser
// against the truncated/dangling inputs a fixed corpus misses.
func FuzzSelectExpr(f *testing.F) {
	seeds := []string{
		"",
		"Tag = Java",
		"Tag = Java and Score > 1",
		"not (Tag = Go) or Type = question",
		"Tag = Java or Tag = Go or Tag = C",
		"Tag = Java or Tag = Haskell",
		"UserId >= 200 and UserId <= 300",
		"Score >= 2.5",
		"Tag = 'Java' AND NOT Type = answer",
		"Tag < Java",
		"(Tag = Java",
		"Tag = Java and",
		"Tag = Java or",
		"Tag =",
		"= Java",
		"not",
		"Tag ! Java",
		"Tag = 'unterminated",
		"Missing = 1",
		"UserId = notanint",
		"Tag = Java) and (Type = question",
		"a\x00b = 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		if len(expr) > 1<<12 {
			t.Skip("outsized expression")
		}
		tbl := fuzzPostsTable(t)
		pred, cerr := tbl.CompileExpr(expr)
		vec, verr := tbl.SelectExpr(expr)
		if (cerr == nil) != (verr == nil) {
			t.Fatalf("paths disagree on acceptance of %q: closure=%v vectorized=%v", expr, cerr, verr)
		}
		if cerr != nil {
			return
		}
		want := tbl.SelectFunc(pred)
		if vec.NumRows() != want.NumRows() {
			t.Fatalf("%q: vectorized %d rows, closure %d", expr, vec.NumRows(), want.NumRows())
		}
		vids, wids := vec.RowIDs(), want.RowIDs()
		for i := range vids {
			if vids[i] != wids[i] {
				t.Fatalf("%q: row id[%d] = %d, closure %d", expr, i, vids[i], wids[i])
			}
		}
	})
}

// fuzzPostsTable is postsTable without the *testing.T helper plumbing, so
// the fuzz target can construct its fixture per execution (fuzz workers run
// in parallel; sharing one table would race on nothing but still reads
// cleaner built fresh — it is 6 rows).
func fuzzPostsTable(t *testing.T) *Table {
	tbl := MustNew(Schema{
		{"PostId", Int}, {"UserId", Int}, {"Type", String}, {"Tag", String}, {"Score", Float},
	})
	for _, row := range [][]any{
		{1, 100, "question", "Java", 3.0},
		{2, 200, "answer", "Java", 5.0},
		{3, 300, "question", "Go", 1.0},
		{4, 100, "answer", "Go", 2.5},
		{5, 200, "question", "Java", 0.0},
		{6, 400, "answer", "Java", 4.0},
	} {
		if err := tbl.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}
