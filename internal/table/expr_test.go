package table

import (
	"testing"
	"testing/quick"
)

func TestSelectExprPaperSyntax(t *testing.T) {
	tbl := postsTable(t)
	// The exact form from the paper: ringo.Select(P, 'Tag=Java').
	java, err := tbl.SelectExpr("Tag=Java")
	if err != nil {
		t.Fatal(err)
	}
	if java.NumRows() != 4 {
		t.Fatalf("Tag=Java rows = %d", java.NumRows())
	}
	q, err := tbl.SelectExpr("Type=question")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRows() != 3 {
		t.Fatalf("Type=question rows = %d", q.NumRows())
	}
}

func TestSelectExprConnectives(t *testing.T) {
	tbl := postsTable(t)
	cases := []struct {
		expr string
		want int
	}{
		{"Tag = Java and Type = question", 2},
		{"Tag = Java or Tag = Go", 6},
		{"not Tag = Java", 2},
		{"Score >= 3 and Score <= 5", 3},
		{"(Tag = Go or Tag = Java) and Type = answer", 3},
		{"UserId < 200 or UserId > 300", 3},
		{"not (Tag = Java and Type = question)", 4},
		{"Score != 0", 5},
	}
	for _, c := range cases {
		got, err := tbl.SelectExpr(c.expr)
		if err != nil {
			t.Fatalf("%q: %v", c.expr, err)
		}
		if got.NumRows() != c.want {
			t.Fatalf("%q: %d rows, want %d", c.expr, got.NumRows(), c.want)
		}
	}
}

func TestSelectExprQuotedValues(t *testing.T) {
	tbl := mustTable(t, Schema{{"name", String}})
	mustAppend(t, tbl, []any{"big cat"}, []any{"dog"}, []any{"3"})
	got, err := tbl.SelectExpr(`name = 'big cat'`)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 {
		t.Fatalf("quoted value rows = %d", got.NumRows())
	}
	// A numeric-looking value compares as a string against string columns.
	got, err = tbl.SelectExpr(`name = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 {
		t.Fatalf("numeric string rows = %d", got.NumRows())
	}
	got, err = tbl.SelectExpr(`"name" = "dog"`)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 {
		t.Fatalf("double-quoted rows = %d", got.NumRows())
	}
}

func TestSelectExprNumericCoercion(t *testing.T) {
	tbl := postsTable(t)
	// Int constant against a float column and vice versa.
	if _, err := tbl.SelectExpr("Score > 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.SelectExpr("UserId = 100"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.SelectExpr("UserId = 1.5"); err == nil {
		t.Fatal("float constant on int column accepted")
	}
}

func TestSelectExprInPlace(t *testing.T) {
	tbl := postsTable(t)
	n, err := tbl.SelectExprInPlace("Tag = Java and Score > 0")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || tbl.NumRows() != 3 {
		t.Fatalf("in-place kept %d", n)
	}
}

func TestSelectExprErrors(t *testing.T) {
	tbl := postsTable(t)
	for _, expr := range []string{
		"",
		"Tag",
		"Tag =",
		"= Java",
		"Missing = x",
		"Tag ~ Java",
		"(Tag = Java",
		"Tag = Java) extra",
		"Tag = Java Type = question", // missing connective
		"Tag = 'unterminated",
		"Tag ! Java",
		"and Tag = Java",
		"Tag = Java and",
		"Tag = Java or",
		"Tag = Java and not",
		"Tag = Java and (",
		"(",
		")",
		"not",
		"not not",
	} {
		if _, err := tbl.SelectExpr(expr); err == nil {
			t.Fatalf("expression %q accepted", expr)
		}
	}
}

func TestSelectExprCaseInsensitiveKeywords(t *testing.T) {
	tbl := postsTable(t)
	got, err := tbl.SelectExpr("Tag = Java AND NOT Type = question OR Tag = Go")
	if err != nil {
		t.Fatal(err)
	}
	// (Java and not question) = 2 answers; or Go = 2 more.
	if got.NumRows() != 4 {
		t.Fatalf("rows = %d", got.NumRows())
	}
}

// Property: SelectExpr("x < v") matches Select(x, LT, v) for random data.
func TestSelectExprMatchesSelectProperty(t *testing.T) {
	f := func(vals []int16, v int16) bool {
		tbl := MustNew(Schema{{"x", Int}})
		for _, x := range vals {
			if err := tbl.AppendRow(int64(x)); err != nil {
				return false
			}
		}
		a, err1 := tbl.SelectExpr("x < " + itoa(int64(v)))
		b, err2 := tbl.Select("x", LT, int64(v))
		if err1 != nil || err2 != nil {
			return false
		}
		return a.NumRows() == b.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
