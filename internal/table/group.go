package table

import (
	"fmt"
	"math"
)

// AggOp enumerates aggregation operators for Aggregate.
type AggOp int

// Aggregation operators.
const (
	Count AggOp = iota
	Sum
	Min
	Max
	Mean
	First
)

// String returns the lowercase operator name.
func (op AggOp) String() string {
	switch op {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Mean:
		return "mean"
	case First:
		return "first"
	default:
		return fmt.Sprintf("AggOp(%d)", int(op))
	}
}

// Group assigns each row a dense group id such that rows with equal values
// in the named columns share an id, and reports the number of groups. Group
// ids are dense in first-occurrence order. This is Ringo's in-place
// grouping: the table itself is not modified and row identifiers let callers
// track members of each group.
//
// Grouping by a single column iterates that column's storage directly
// (values for Int, interned ids for String, bit patterns for Float) with no
// per-row key bytes materialized; multi-column grouping falls back to the
// canonical rowkey encoding.
func (t *Table) Group(cols ...string) (ids []int, groups int, err error) {
	if len(cols) == 1 {
		return t.groupSingle(cols[0])
	}
	enc, err := newRowKeyEncoder(t, cols)
	if err != nil {
		return nil, 0, err
	}
	n := t.NumRows()
	ids = make([]int, n)
	seen := make(map[string]int)
	for row := 0; row < n; row++ {
		k := enc.key(row)
		id, ok := seen[k]
		if !ok {
			id = len(seen)
			seen[k] = id
		}
		ids[row] = id
	}
	return ids, len(seen), nil
}

// groupSingle is the column-direct fast path of Group: group ids come from
// one map probe per row over the column's raw int64/float64 storage. String
// columns group by interned id — equal ids iff equal strings, the same
// classes the rowkey encoding produces — and Float columns by bit pattern,
// matching the rowkey's Float64bits encoding.
func (t *Table) groupSingle(col string) (ids []int, groups int, err error) {
	i := t.ColIndex(col)
	if i < 0 {
		return nil, 0, fmt.Errorf("table: no column %q", col)
	}
	n := t.NumRows()
	ids = make([]int, n)
	seen := make(map[int64]int)
	if t.cols[i].Type == Float {
		data := t.floats[i]
		for row := 0; row < n; row++ {
			k := int64(math.Float64bits(data[row]))
			id, ok := seen[k]
			if !ok {
				id = len(seen)
				seen[k] = id
			}
			ids[row] = id
		}
		return ids, len(seen), nil
	}
	data := t.ints[i]
	for row := 0; row < n; row++ {
		id, ok := seen[data[row]]
		if !ok {
			id = len(seen)
			seen[data[row]] = id
		}
		ids[row] = id
	}
	return ids, len(seen), nil
}

// GroupCol runs Group and appends the group ids to the table as a new Int
// column named outCol, mirroring Ringo's pattern of writing analysis results
// back into tables.
func (t *Table) GroupCol(outCol string, cols ...string) error {
	ids, _, err := t.Group(cols...)
	if err != nil {
		return err
	}
	vals := make([]int64, len(ids))
	for i, id := range ids {
		vals[i] = int64(id)
	}
	return t.AddIntColumn(outCol, vals)
}

// Aggregate groups the table by groupCols and aggregates valCol with op,
// returning a new table with the group columns followed by one result column
// named outCol. For Count, valCol may be empty. Numeric aggregates accept
// Int and Float value columns; the result column is Int for Count and for
// Sum/Min/Max/First over Int columns, Float otherwise.
func (t *Table) Aggregate(groupCols []string, op AggOp, valCol, outCol string) (*Table, error) {
	ids, groups, err := t.Group(groupCols...)
	if err != nil {
		return nil, err
	}
	if outCol == "" {
		outCol = op.String()
	}

	// Representative row per group, in group-id (first occurrence) order.
	rep := make([]int, groups)
	for i := range rep {
		rep[i] = -1
	}
	for row, id := range ids {
		if rep[id] < 0 {
			rep[id] = row
		}
	}

	outType := Int
	var intVals []int64
	var floatVals []float64
	if op != Count {
		i := t.ColIndex(valCol)
		if i < 0 {
			return nil, fmt.Errorf("table: no column %q", valCol)
		}
		switch t.cols[i].Type {
		case Int:
			intVals = t.ints[i]
			if op == Mean {
				outType = Float
			}
		case Float:
			floatVals = t.floats[i]
			outType = Float
		default:
			if op != First {
				return nil, fmt.Errorf("table: aggregate %v over string column %q", op, valCol)
			}
			outType = String
			intVals = t.ints[i]
		}
	}

	schema := make(Schema, 0, len(groupCols)+1)
	for _, name := range groupCols {
		schema = append(schema, t.cols[t.ColIndex(name)])
	}
	schema = append(schema, Column{outCol, outType})
	out, err := NewWithCapacity(schema, groups)
	if err != nil {
		return nil, err
	}
	out.pool = t.pool.Clone()

	// Compute aggregates.
	counts := make([]int64, groups)
	sums := make([]float64, groups)
	isums := make([]int64, groups)
	mins := make([]float64, groups)
	maxs := make([]float64, groups)
	firsts := make([]int64, groups)
	ffirsts := make([]float64, groups)
	haveFirst := make([]bool, groups)
	for g := range mins {
		mins[g] = math.Inf(1)
		maxs[g] = math.Inf(-1)
	}
	for row, g := range ids {
		counts[g]++
		var fv float64
		var iv int64
		if intVals != nil {
			iv = intVals[row]
			fv = float64(iv)
		} else if floatVals != nil {
			fv = floatVals[row]
		}
		sums[g] += fv
		isums[g] += iv
		if fv < mins[g] {
			mins[g] = fv
		}
		if fv > maxs[g] {
			maxs[g] = fv
		}
		if !haveFirst[g] {
			haveFirst[g] = true
			firsts[g] = iv
			ffirsts[g] = fv
		}
	}

	for g := 0; g < groups; g++ {
		row := rep[g]
		for k := range groupCols {
			i := t.ColIndex(groupCols[k])
			if t.cols[i].Type == Float {
				out.floats[k] = append(out.floats[k], t.floats[i][row])
			} else {
				out.ints[k] = append(out.ints[k], t.ints[i][row])
			}
		}
		last := len(groupCols)
		switch {
		case op == Count:
			out.ints[last] = append(out.ints[last], counts[g])
		case outType == Int:
			var v int64
			switch op {
			case Sum:
				v = isums[g]
			case Min:
				v = int64(mins[g])
			case Max:
				v = int64(maxs[g])
			case First:
				v = firsts[g]
			}
			out.ints[last] = append(out.ints[last], v)
		case outType == Float:
			var v float64
			switch op {
			case Sum:
				v = sums[g]
			case Min:
				v = mins[g]
			case Max:
				v = maxs[g]
			case Mean:
				v = sums[g] / float64(counts[g])
			case First:
				v = ffirsts[g]
			}
			out.floats[last] = append(out.floats[last], v)
		default: // String First
			out.ints[last] = append(out.ints[last], firsts[g])
		}
		out.rowIDs = append(out.rowIDs, int64(g))
	}
	out.nextID = int64(groups)
	return out, nil
}

// Unique returns a new table keeping the first row of each distinct
// combination of values in the named columns (all columns if none are
// given). Row identifiers of kept rows are preserved. A single column
// deduplicates over its raw storage directly (the Group fast path); multiple
// columns go through the rowkey encoding.
func (t *Table) Unique(cols ...string) (*Table, error) {
	if len(cols) == 0 {
		cols = t.ColNames()
	}
	if len(cols) == 1 {
		ids, groups, err := t.groupSingle(cols[0])
		if err != nil {
			return nil, err
		}
		out := t.freshLike(groups)
		next := 0
		for row, id := range ids {
			if id == next { // first occurrence: group ids are dense in first-occurrence order
				out.appendRowFrom(t, row)
				next++
			}
		}
		out.nextID = t.nextID
		return out, nil
	}
	enc, err := newRowKeyEncoder(t, cols)
	if err != nil {
		return nil, err
	}
	out := t.freshLike(0)
	seen := make(map[string]struct{})
	for row := 0; row < t.NumRows(); row++ {
		k := enc.key(row)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.appendRowFrom(t, row)
	}
	out.nextID = t.nextID
	return out, nil
}
