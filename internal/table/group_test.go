package table

import (
	"math"
	"testing"
)

func TestGroupAssignsDenseIDs(t *testing.T) {
	tbl := postsTable(t)
	ids, groups, err := tbl.Group("Tag")
	if err != nil {
		t.Fatal(err)
	}
	if groups != 2 {
		t.Fatalf("groups = %d, want 2 (Java, Go)", groups)
	}
	// First occurrence order: Java=0, Go=1.
	want := []int{0, 0, 1, 1, 0, 0}
	for i, id := range ids {
		if id != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestGroupMultiColumn(t *testing.T) {
	tbl := postsTable(t)
	_, groups, err := tbl.Group("Tag", "Type")
	if err != nil {
		t.Fatal(err)
	}
	if groups != 4 { // (Java,q) (Java,a) (Go,q) (Go,a)
		t.Fatalf("groups = %d, want 4", groups)
	}
	if _, _, err := tbl.Group("nope"); err == nil {
		t.Fatal("group on missing column accepted")
	}
}

func TestGroupCol(t *testing.T) {
	tbl := postsTable(t)
	if err := tbl.GroupCol("TagGroup", "Tag"); err != nil {
		t.Fatal(err)
	}
	col, err := tbl.IntCol("TagGroup")
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != 0 || col[2] != 1 {
		t.Fatalf("group column = %v", col)
	}
}

func TestAggregateCount(t *testing.T) {
	tbl := postsTable(t)
	agg, err := tbl.Aggregate([]string{"Tag"}, Count, "", "n")
	if err != nil {
		t.Fatal(err)
	}
	if agg.NumRows() != 2 {
		t.Fatalf("agg rows = %d", agg.NumRows())
	}
	got := map[string]int64{}
	n, _ := agg.IntCol("n")
	for row := 0; row < agg.NumRows(); row++ {
		got[agg.StrAt(0, row)] = n[row]
	}
	if got["Java"] != 4 || got["Go"] != 2 {
		t.Fatalf("counts = %v", got)
	}
}

func TestAggregateSumMinMaxMean(t *testing.T) {
	tbl := postsTable(t)
	sum, err := tbl.Aggregate([]string{"Tag"}, Sum, "Score", "s")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := sum.FloatCol("s")
	got := map[string]float64{}
	for row := 0; row < sum.NumRows(); row++ {
		got[sum.StrAt(0, row)] = s[row]
	}
	if got["Java"] != 12.0 || got["Go"] != 3.5 {
		t.Fatalf("sums = %v", got)
	}

	mean, err := tbl.Aggregate([]string{"Tag"}, Mean, "Score", "m")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := mean.FloatCol("m")
	for row := 0; row < mean.NumRows(); row++ {
		tag := mean.StrAt(0, row)
		if tag == "Java" && math.Abs(m[row]-3.0) > 1e-12 {
			t.Fatalf("Java mean = %v", m[row])
		}
	}

	mn, err := tbl.Aggregate([]string{"Tag"}, Min, "Score", "")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := mn.FloatCol("min")
	for row := 0; row < mn.NumRows(); row++ {
		if mn.StrAt(0, row) == "Go" && v[row] != 1.0 {
			t.Fatalf("Go min = %v", v[row])
		}
	}

	mx, err := tbl.Aggregate([]string{"Tag"}, Max, "Score", "")
	if err != nil {
		t.Fatal(err)
	}
	vx, _ := mx.FloatCol("max")
	for row := 0; row < mx.NumRows(); row++ {
		if mx.StrAt(0, row) == "Java" && vx[row] != 5.0 {
			t.Fatalf("Java max = %v", vx[row])
		}
	}
}

func TestAggregateIntColumnStaysInt(t *testing.T) {
	tbl := postsTable(t)
	agg, err := tbl.Aggregate([]string{"Tag"}, Sum, "UserId", "total")
	if err != nil {
		t.Fatal(err)
	}
	typ, _ := agg.ColType("total")
	if typ != Int {
		t.Fatalf("sum of int column has type %v", typ)
	}
	vals, _ := agg.IntCol("total")
	got := map[string]int64{}
	for row := 0; row < agg.NumRows(); row++ {
		got[agg.StrAt(0, row)] = vals[row]
	}
	if got["Java"] != 100+200+200+400 {
		t.Fatalf("Java user sum = %d", got["Java"])
	}
}

func TestAggregateMeanOfIntIsFloat(t *testing.T) {
	tbl := postsTable(t)
	agg, err := tbl.Aggregate([]string{"Tag"}, Mean, "UserId", "m")
	if err != nil {
		t.Fatal(err)
	}
	typ, _ := agg.ColType("m")
	if typ != Float {
		t.Fatalf("mean of int column has type %v", typ)
	}
}

func TestAggregateFirstString(t *testing.T) {
	tbl := postsTable(t)
	agg, err := tbl.Aggregate([]string{"UserId"}, First, "Type", "FirstType")
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]string{}
	u, _ := agg.IntCol("UserId")
	for row := 0; row < agg.NumRows(); row++ {
		got[u[row]] = agg.StrAt(agg.ColIndex("FirstType"), row)
	}
	if got[100] != "question" || got[400] != "answer" {
		t.Fatalf("first types = %v", got)
	}
}

func TestAggregateErrors(t *testing.T) {
	tbl := postsTable(t)
	if _, err := tbl.Aggregate([]string{"Tag"}, Sum, "Type", "s"); err == nil {
		t.Fatal("sum over string column accepted")
	}
	if _, err := tbl.Aggregate([]string{"Tag"}, Sum, "nope", "s"); err == nil {
		t.Fatal("missing value column accepted")
	}
	if _, err := tbl.Aggregate([]string{"nope"}, Count, "", "n"); err == nil {
		t.Fatal("missing group column accepted")
	}
}

func TestUnique(t *testing.T) {
	tbl := postsTable(t)
	u, err := tbl.Unique("Tag")
	if err != nil {
		t.Fatal(err)
	}
	if u.NumRows() != 2 {
		t.Fatalf("unique tags = %d rows", u.NumRows())
	}
	// First-occurrence rows keep their ids.
	if u.RowIDs()[0] != 0 || u.RowIDs()[1] != 2 {
		t.Fatalf("unique row ids = %v", u.RowIDs())
	}
	// All columns distinct: no duplicate full rows in postsTable.
	all, err := tbl.Unique()
	if err != nil {
		t.Fatal(err)
	}
	if all.NumRows() != 6 {
		t.Fatalf("full unique = %d rows", all.NumRows())
	}
}

func TestOrderBy(t *testing.T) {
	tbl := postsTable(t)
	if err := tbl.OrderBy(false, "Score"); err != nil {
		t.Fatal(err)
	}
	s, _ := tbl.FloatCol("Score")
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			t.Fatalf("not ascending: %v", s)
		}
	}
	// Row ids traveled with their rows: the 0.0 score row was PostId 5, id 4.
	if tbl.RowIDs()[0] != 4 {
		t.Fatalf("row ids after sort = %v", tbl.RowIDs())
	}
	if err := tbl.OrderBy(true, "Score"); err != nil {
		t.Fatal(err)
	}
	s, _ = tbl.FloatCol("Score")
	for i := 1; i < len(s); i++ {
		if s[i-1] < s[i] {
			t.Fatalf("not descending: %v", s)
		}
	}
}

func TestOrderByMultiColumnStable(t *testing.T) {
	tbl := postsTable(t)
	if err := tbl.OrderBy(false, "Tag", "UserId"); err != nil {
		t.Fatal(err)
	}
	tags := make([]string, tbl.NumRows())
	users, _ := tbl.IntCol("UserId")
	for i := range tags {
		tags[i] = tbl.StrAt(tbl.ColIndex("Tag"), i)
	}
	for i := 1; i < len(tags); i++ {
		if tags[i-1] > tags[i] {
			t.Fatalf("tags not sorted: %v", tags)
		}
		if tags[i-1] == tags[i] && users[i-1] > users[i] {
			t.Fatalf("users not sorted within tag: %v / %v", tags, users)
		}
	}
	if err := tbl.OrderBy(false); err == nil {
		t.Fatal("OrderBy with no columns accepted")
	}
	if err := tbl.OrderBy(false, "nope"); err == nil {
		t.Fatal("OrderBy on missing column accepted")
	}
}

func TestOrderByStringColumn(t *testing.T) {
	tbl := mustTable(t, Schema{{"w", String}})
	mustAppend(t, tbl, []any{"pear"}, []any{"apple"}, []any{"orange"})
	if err := tbl.OrderBy(false, "w"); err != nil {
		t.Fatal(err)
	}
	if tbl.StrAt(0, 0) != "apple" || tbl.StrAt(0, 2) != "pear" {
		t.Fatal("string sort wrong")
	}
}
