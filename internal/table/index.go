package table

import (
	"errors"
	"fmt"

	"ringo/internal/bitmap"
)

// DefaultIndexMaxCardinality bounds how many distinct values an equality
// bitmap index will hold. The index pays one bitmap (NumRows/8 bytes) per
// distinct value, so it only makes sense for low-cardinality columns — tags,
// types, categories — which is exactly where repeated equality filters
// concentrate (kelindar/column makes the same call).
const DefaultIndexMaxCardinality = 4096

// ErrHighCardinality is returned by BuildEqIndex when a column has more
// distinct values than the cap: the index would cost more than the scans it
// saves. Callers fall back to the vectorized scan.
var ErrHighCardinality = errors.New("table: column cardinality exceeds equality-index cap")

// EqIndex is an equality bitmap index over one column: for every distinct
// value, the bitmap of rows holding it. A lookup turns a repeat equality
// filter into a cache fetch plus a row gather — no column scan at all.
// Indexes are immutable once built and keyed by table fingerprint at the
// core layer, so staleness is impossible by construction: any workspace
// mutation moves the fingerprint and the index is dropped.
type EqIndex struct {
	col   string
	typ   Type
	rows  int
	vals  map[int64]*bitmap.Bitmap
	bytes int64
}

// BuildEqIndex scans the named column once and builds its equality bitmap
// index. Int columns are keyed by value, String columns by interned pool id.
// Float columns are rejected (bit-pattern keying would diverge from ==
// semantics at -0 and NaN), as are columns whose distinct-value count
// exceeds maxCard (<= 0 means DefaultIndexMaxCardinality), with
// ErrHighCardinality.
func BuildEqIndex(t *Table, col string, maxCard int) (*EqIndex, error) {
	i := t.ColIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("table: no column %q", col)
	}
	if t.cols[i].Type == Float {
		return nil, fmt.Errorf("table: float column %q is not equality-indexable", col)
	}
	if maxCard <= 0 {
		maxCard = DefaultIndexMaxCardinality
	}
	n := t.NumRows()
	idx := &EqIndex{col: col, typ: t.cols[i].Type, rows: n, vals: make(map[int64]*bitmap.Bitmap)}
	for row, v := range t.ints[i] {
		bm, ok := idx.vals[v]
		if !ok {
			if len(idx.vals) >= maxCard {
				return nil, fmt.Errorf("%w: column %q has more than %d distinct values", ErrHighCardinality, col, maxCard)
			}
			bm = bitmap.New(n)
			idx.vals[v] = bm
		}
		bm.Set(row)
	}
	for _, bm := range idx.vals {
		idx.bytes += bm.Bytes()
	}
	idx.bytes += int64(len(idx.vals)) * 16 // map entry overhead estimate
	return idx, nil
}

// Col returns the indexed column's name.
func (x *EqIndex) Col() string { return x.col }

// Rows returns the row count the index was built over.
func (x *EqIndex) Rows() int { return x.rows }

// Cardinality returns the number of distinct values indexed.
func (x *EqIndex) Cardinality() int { return len(x.vals) }

// Bytes estimates the index's resident size, for cache accounting.
func (x *EqIndex) Bytes() int64 { return x.bytes }

// Lookup returns the selection bitmap for `col op val` over t, which must
// be the same table state the index was built from. Only EQ and NE are
// servable (ok reports false otherwise, and on type mismatch or row-count
// drift — callers fall back to the vectorized scan). The EQ bitmap is the
// index's own storage and must not be modified; NE returns a fresh
// complement.
func (x *EqIndex) Lookup(t *Table, op CmpOp, val any) (*bitmap.Bitmap, bool) {
	if op != EQ && op != NE {
		return nil, false
	}
	if t.NumRows() != x.rows {
		return nil, false
	}
	var key int64
	var missing bool
	switch x.typ {
	case Int:
		c, ok := toInt64(val)
		if !ok {
			return nil, false
		}
		key = c
	default: // String
		s, ok := val.(string)
		if !ok {
			return nil, false
		}
		id, interned := t.pool.Lookup(s)
		if !interned {
			missing = true
		} else {
			key = int64(id)
		}
	}
	bm := x.vals[key]
	if missing || bm == nil {
		// Value absent: EQ matches nothing, NE everything.
		out := bitmap.New(x.rows)
		if op == NE {
			out.SetAll()
		}
		return out, true
	}
	if op == NE {
		out := bm.Clone()
		out.Not()
		return out, true
	}
	return bm, true
}
