package table

import (
	"fmt"
	"math"

	"ringo/internal/par"
)

// Join performs an equi-join of t (left) with right on leftCol == rightCol
// and returns a new table whose schema is the left schema followed by the
// right schema. Columns whose names collide are disambiguated with "-1"
// (left) and "-2" (right) suffixes, matching the paper's §4.1 example where
// joining Questions with Answers yields UserId-1 and UserId-2 columns. The
// join always produces a new table object with fresh row identifiers.
//
// The implementation is a hash join: a hash table is built over the right
// input's key column, then the left input probes it in parallel using the
// contention-free two-pass (count, prefix-sum, fill) pattern.
func (t *Table) Join(right *Table, leftCol, rightCol string) (*Table, error) {
	li := t.ColIndex(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("table: join: left has no column %q", leftCol)
	}
	ri := right.ColIndex(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("table: join: right has no column %q", rightCol)
	}
	lt, rt := t.cols[li].Type, right.cols[ri].Type
	if lt != rt {
		return nil, fmt.Errorf("table: join: key type mismatch %v vs %v", lt, rt)
	}

	// Normalize keys to int64. String keys from distinct pools are remapped
	// through the left pool so equal strings get equal key values.
	lkeys, rkeys := t.joinKeys(li, right, ri)

	// Build on the right input (the paper joins the large edge table, as the
	// probe side, against a single-column table).
	build := make(map[int64][]int32, right.NumRows())
	for row, k := range rkeys {
		build[k] = append(build[k], int32(row))
	}

	// Probe pass 1: count output rows per range.
	n := t.NumRows()
	ranges := par.Split(n, par.Workers())
	counts := make([]int, len(ranges))
	par.ForEach(len(ranges), func(w int) {
		c := 0
		for row := ranges[w].Lo; row < ranges[w].Hi; row++ {
			c += len(build[lkeys[row]])
		}
		counts[w] = c
	})
	total := 0
	offsets := make([]int, len(ranges))
	for w, c := range counts {
		offsets[w] = total
		total += c
	}

	out, err := newJoinOutput(t, right, total)
	if err != nil {
		return nil, err
	}
	// Right string columns must be re-interned into the output pool. Build
	// the remap once, sequentially, before the parallel fill.
	rStrRemap := remapPool(right, out)

	nLeft := len(t.cols)
	par.ForEach(len(ranges), func(w int) {
		at := offsets[w]
		for row := ranges[w].Lo; row < ranges[w].Hi; row++ {
			matches := build[lkeys[row]]
			for _, rrow := range matches {
				for i := range t.cols {
					if t.cols[i].Type == Float {
						out.floats[i][at] = t.floats[i][row]
					} else {
						out.ints[i][at] = t.ints[i][row]
					}
				}
				for j := range right.cols {
					o := nLeft + j
					switch right.cols[j].Type {
					case Float:
						out.floats[o][at] = right.floats[j][int(rrow)]
					case String:
						out.ints[o][at] = rStrRemap[right.ints[j][int(rrow)]]
					default:
						out.ints[o][at] = right.ints[j][int(rrow)]
					}
				}
				at++
			}
		}
	})
	for i := 0; i < total; i++ {
		out.rowIDs[i] = int64(i)
	}
	out.nextID = int64(total)
	return out, nil
}

// LeftJoin is Join preserving unmatched left rows: rows of t with no match
// in right appear once, with right Int columns set to the given nullInt,
// Float columns to NaN, and String columns to the empty string.
func (t *Table) LeftJoin(right *Table, leftCol, rightCol string, nullInt int64) (*Table, error) {
	li := t.ColIndex(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("table: left join: left has no column %q", leftCol)
	}
	ri := right.ColIndex(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("table: left join: right has no column %q", rightCol)
	}
	if t.cols[li].Type != right.cols[ri].Type {
		return nil, fmt.Errorf("table: left join: key type mismatch")
	}
	lkeys, rkeys := t.joinKeys(li, right, ri)
	build := make(map[int64][]int32, right.NumRows())
	for row, k := range rkeys {
		build[k] = append(build[k], int32(row))
	}
	total := 0
	for _, k := range lkeys {
		if m := len(build[k]); m > 0 {
			total += m
		} else {
			total++
		}
	}
	out, err := newJoinOutput(t, right, total)
	if err != nil {
		return nil, err
	}
	rStrRemap := remapPool(right, out)
	nullStr := int64(out.pool.Intern(""))
	nLeft := len(t.cols)
	at := 0
	emit := func(lrow int, rrow int32) {
		for i := range t.cols {
			if t.cols[i].Type == Float {
				out.floats[i][at] = t.floats[i][lrow]
			} else {
				out.ints[i][at] = t.ints[i][lrow]
			}
		}
		for j := range right.cols {
			o := nLeft + j
			switch right.cols[j].Type {
			case Float:
				if rrow < 0 {
					out.floats[o][at] = math.NaN()
				} else {
					out.floats[o][at] = right.floats[j][rrow]
				}
			case String:
				if rrow < 0 {
					out.ints[o][at] = nullStr
				} else {
					out.ints[o][at] = rStrRemap[right.ints[j][rrow]]
				}
			default:
				if rrow < 0 {
					out.ints[o][at] = nullInt
				} else {
					out.ints[o][at] = right.ints[j][rrow]
				}
			}
		}
		out.rowIDs[at] = int64(at)
		at++
	}
	for lrow := 0; lrow < t.NumRows(); lrow++ {
		matches := build[lkeys[lrow]]
		if len(matches) == 0 {
			emit(lrow, -1)
			continue
		}
		for _, rrow := range matches {
			emit(lrow, rrow)
		}
	}
	out.nextID = int64(total)
	return out, nil
}

// joinKeys returns comparable int64 key slices for the two join columns.
func (t *Table) joinKeys(li int, right *Table, ri int) (lkeys, rkeys []int64) {
	switch t.cols[li].Type {
	case Float:
		lkeys = make([]int64, t.NumRows())
		for row, f := range t.floats[li] {
			lkeys[row] = int64(math.Float64bits(f))
		}
		rkeys = make([]int64, right.NumRows())
		for row, f := range right.floats[ri] {
			rkeys[row] = int64(math.Float64bits(f))
		}
	case String:
		// Map right pool ids into left pool id space; unseen strings get
		// fresh negative keys so they match nothing on the left.
		lkeys = t.ints[li]
		rkeys = make([]int64, right.NumRows())
		remap := make(map[int64]int64)
		nextMiss := int64(-1)
		for row, id := range right.ints[ri] {
			k, ok := remap[id]
			if !ok {
				if lid, present := t.pool.Lookup(right.pool.Get(int32(id))); present {
					k = int64(lid)
				} else {
					k = nextMiss
					nextMiss--
				}
				remap[id] = k
			}
			rkeys[row] = k
		}
	default:
		lkeys = t.ints[li]
		rkeys = right.ints[ri]
	}
	return lkeys, rkeys
}

// newJoinOutput builds the output table for a join of left and right with
// capacity rows, applying -1/-2 suffixes to colliding column names.
func newJoinOutput(left, right *Table, rows int) (*Table, error) {
	schema := make(Schema, 0, len(left.cols)+len(right.cols))
	rightNames := make(map[string]bool, len(right.cols))
	for _, c := range right.cols {
		rightNames[c.Name] = true
	}
	for _, c := range left.cols {
		name := c.Name
		if rightNames[c.Name] {
			name += "-1"
		}
		schema = append(schema, Column{name, c.Type})
	}
	leftNames := make(map[string]bool, len(left.cols))
	for _, c := range left.cols {
		leftNames[c.Name] = true
	}
	for _, c := range right.cols {
		name := c.Name
		if leftNames[c.Name] {
			name += "-2"
		}
		schema = append(schema, Column{name, c.Type})
	}
	out, err := NewWithCapacity(schema, rows)
	if err != nil {
		return nil, fmt.Errorf("table: join output schema: %w", err)
	}
	out.pool = left.pool.Clone()
	for i := range out.cols {
		if out.cols[i].Type == Float {
			out.floats[i] = out.floats[i][:rows]
		} else {
			out.ints[i] = out.ints[i][:rows]
		}
	}
	out.rowIDs = out.rowIDs[:rows]
	return out, nil
}

// remapPool interns every string of src's pool into dst's pool and returns
// the id translation indexed by src pool id.
func remapPool(src, dst *Table) []int64 {
	remap := make([]int64, src.pool.Len())
	for id := 0; id < src.pool.Len(); id++ {
		remap[id] = int64(dst.pool.Intern(src.pool.Get(int32(id))))
	}
	return remap
}
