package table

import (
	"testing"
	"testing/quick"
)

func TestJoinBasicIntKeys(t *testing.T) {
	posts := postsTable(t)
	users := mustTable(t, Schema{{"UserId", Int}, {"Name", String}})
	mustAppend(t, users,
		[]any{100, "ada"},
		[]any{200, "bob"},
		[]any{999, "ghost"},
	)
	j, err := posts.Join(users, "UserId", "UserId")
	if err != nil {
		t.Fatal(err)
	}
	// posts has 2 rows for user 100 and 2 for 200; user 999 matches nothing.
	if j.NumRows() != 4 {
		t.Fatalf("join rows = %d, want 4", j.NumRows())
	}
	// Colliding key column names get -1/-2 suffixes (paper §4.1).
	if j.ColIndex("UserId-1") < 0 || j.ColIndex("UserId-2") < 0 {
		t.Fatalf("join columns = %v", j.ColNames())
	}
	// Key columns agree on every output row.
	l, _ := j.IntCol("UserId-1")
	r, _ := j.IntCol("UserId-2")
	for i := range l {
		if l[i] != r[i] {
			t.Fatalf("row %d: key mismatch %d vs %d", i, l[i], r[i])
		}
	}
	// Non-colliding columns keep their names.
	if j.ColIndex("Name") < 0 || j.ColIndex("Tag") < 0 {
		t.Fatalf("join columns = %v", j.ColNames())
	}
}

func TestJoinStringKeysAcrossPools(t *testing.T) {
	left := mustTable(t, Schema{{"Tag", String}, {"N", Int}})
	mustAppend(t, left, []any{"go", 1}, []any{"java", 2}, []any{"rust", 3})
	right := mustTable(t, Schema{{"Lang", String}, {"Year", Int}})
	// Different intern order on the right pool: ids differ, values must match.
	mustAppend(t, right, []any{"rust", 2010}, []any{"java", 1995}, []any{"python", 1991})
	j, err := left.Join(right, "Tag", "Lang")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 2 {
		t.Fatalf("join rows = %d, want 2", j.NumRows())
	}
	for row := 0; row < j.NumRows(); row++ {
		tag := j.StrAt(j.ColIndex("Tag"), row)
		lang := j.StrAt(j.ColIndex("Lang"), row)
		if tag != lang {
			t.Fatalf("row %d: %q joined with %q", row, tag, lang)
		}
	}
}

func TestJoinFloatKeys(t *testing.T) {
	left := mustTable(t, Schema{{"x", Float}})
	mustAppend(t, left, []any{1.5}, []any{2.5})
	right := mustTable(t, Schema{{"y", Float}})
	mustAppend(t, right, []any{2.5}, []any{3.5})
	j, err := left.Join(right, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 1 {
		t.Fatalf("float join rows = %d", j.NumRows())
	}
}

func TestJoinDuplicateKeysCrossProduct(t *testing.T) {
	left := mustTable(t, Schema{{"k", Int}, {"l", Int}})
	mustAppend(t, left, []any{1, 10}, []any{1, 11}, []any{2, 12})
	right := mustTable(t, Schema{{"k", Int}, {"r", Int}})
	mustAppend(t, right, []any{1, 20}, []any{1, 21})
	j, err := left.Join(right, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 4 { // 2 left rows with k=1 × 2 right rows with k=1
		t.Fatalf("join rows = %d, want 4", j.NumRows())
	}
}

func TestJoinTypeMismatch(t *testing.T) {
	left := mustTable(t, Schema{{"k", Int}})
	right := mustTable(t, Schema{{"k", String}})
	if _, err := left.Join(right, "k", "k"); err == nil {
		t.Fatal("type-mismatched join accepted")
	}
	if _, err := left.Join(right, "missing", "k"); err == nil {
		t.Fatal("missing left column accepted")
	}
	if _, err := left.Join(right, "k", "missing"); err == nil {
		t.Fatal("missing right column accepted")
	}
}

func TestJoinProducesFreshRowIDs(t *testing.T) {
	posts := postsTable(t)
	qs, _ := posts.Select("Type", EQ, "question")
	as, _ := posts.Select("Type", EQ, "answer")
	j, err := qs.Join(as, "Tag", "Tag")
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range j.RowIDs() {
		if id != int64(i) {
			t.Fatalf("join row id[%d] = %d", i, id)
		}
	}
}

func TestJoinStringPayloadRemap(t *testing.T) {
	// Right-side string payload columns must survive pool translation.
	left := mustTable(t, Schema{{"k", Int}})
	mustAppend(t, left, []any{1}, []any{2})
	right := mustTable(t, Schema{{"k", Int}, {"word", String}})
	mustAppend(t, right, []any{2, "two"}, []any{1, "one"}, []any{3, "three"})
	j, err := left.Join(right, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]string{}
	kc, _ := j.IntCol("k-1")
	for row := 0; row < j.NumRows(); row++ {
		got[kc[row]] = j.StrAt(j.ColIndex("word"), row)
	}
	if got[1] != "one" || got[2] != "two" {
		t.Fatalf("payload remap wrong: %v", got)
	}
}

// Property: |A ⋈ B| on a key equals sum over keys of count_A(k)*count_B(k).
func TestJoinCardinalityProperty(t *testing.T) {
	f := func(ls, rs []uint8) bool {
		left := MustNew(Schema{{"k", Int}})
		for _, v := range ls {
			if err := left.AppendRow(int64(v % 16)); err != nil {
				return false
			}
		}
		right := MustNew(Schema{{"k", Int}})
		for _, v := range rs {
			if err := right.AppendRow(int64(v % 16)); err != nil {
				return false
			}
		}
		j, err := left.Join(right, "k", "k")
		if err != nil {
			return false
		}
		ca := map[int64]int{}
		lcol, _ := left.IntCol("k")
		for _, v := range lcol {
			ca[v]++
		}
		cb := map[int64]int{}
		rcol, _ := right.IntCol("k")
		for _, v := range rcol {
			cb[v]++
		}
		want := 0
		for k, n := range ca {
			want += n * cb[k]
		}
		return j.NumRows() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinLargeParallelPath(t *testing.T) {
	left := MustNew(Schema{{"k", Int}, {"v", Int}})
	const n = 40_000
	for i := 0; i < n; i++ {
		if err := left.AppendRow(i%1000, i); err != nil {
			t.Fatal(err)
		}
	}
	right := MustNew(Schema{{"k", Int}})
	for i := 0; i < 500; i++ {
		if err := right.AppendRow(i); err != nil {
			t.Fatal(err)
		}
	}
	j, err := left.Join(right, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != n/2 {
		t.Fatalf("join rows = %d, want %d", j.NumRows(), n/2)
	}
}
