package table

import (
	"math"
	"testing"
)

func TestLeftJoinKeepsUnmatchedRows(t *testing.T) {
	left := mustTable(t, Schema{{"k", Int}, {"l", Int}})
	mustAppend(t, left, []any{1, 10}, []any{2, 20}, []any{3, 30})
	right := mustTable(t, Schema{{"k", Int}, {"name", String}, {"w", Float}})
	mustAppend(t, right, []any{1, "one", 1.5}, []any{1, "uno", 1.6})
	j, err := left.LeftJoin(right, "k", "k", -99)
	if err != nil {
		t.Fatal(err)
	}
	// k=1 matches twice; k=2 and k=3 appear once unmatched.
	if j.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", j.NumRows())
	}
	k1, _ := j.IntCol("k-1")
	k2, _ := j.IntCol("k-2")
	w, _ := j.FloatCol("w")
	nameIdx := j.ColIndex("name")
	for row := 0; row < j.NumRows(); row++ {
		if k1[row] == 1 {
			if k2[row] != 1 || math.IsNaN(w[row]) {
				t.Fatalf("matched row %d corrupted", row)
			}
			continue
		}
		if k2[row] != -99 {
			t.Fatalf("null int = %d", k2[row])
		}
		if !math.IsNaN(w[row]) {
			t.Fatalf("null float = %v", w[row])
		}
		if j.StrAt(nameIdx, row) != "" {
			t.Fatalf("null string = %q", j.StrAt(nameIdx, row))
		}
	}
}

func TestLeftJoinAllMatchedEqualsJoin(t *testing.T) {
	left := mustTable(t, Schema{{"k", Int}})
	mustAppend(t, left, []any{1}, []any{2})
	right := mustTable(t, Schema{{"k", Int}})
	mustAppend(t, right, []any{1}, []any{2})
	lj, err := left.LeftJoin(right, "k", "k", 0)
	if err != nil {
		t.Fatal(err)
	}
	j, err := left.Join(right, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if lj.NumRows() != j.NumRows() {
		t.Fatalf("left join %d rows, inner join %d", lj.NumRows(), j.NumRows())
	}
}

func TestLeftJoinErrors(t *testing.T) {
	left := mustTable(t, Schema{{"k", Int}})
	right := mustTable(t, Schema{{"k", String}})
	if _, err := left.LeftJoin(right, "k", "k", 0); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := left.LeftJoin(right, "x", "k", 0); err == nil {
		t.Fatal("missing left column accepted")
	}
	if _, err := left.LeftJoin(right, "k", "x", 0); err == nil {
		t.Fatal("missing right column accepted")
	}
}

func TestSample(t *testing.T) {
	tbl := MustNew(Schema{{"x", Int}})
	for i := 0; i < 100; i++ {
		if err := tbl.AppendRow(i); err != nil {
			t.Fatal(err)
		}
	}
	s := tbl.Sample(10, 1)
	if s.NumRows() != 10 {
		t.Fatalf("sample rows = %d", s.NumRows())
	}
	// No duplicates, input order, ids preserved.
	x, _ := s.IntCol("x")
	for i := 1; i < len(x); i++ {
		if x[i-1] >= x[i] {
			t.Fatalf("sample out of order or duplicated: %v", x)
		}
	}
	for i, id := range s.RowIDs() {
		if id != x[i] { // row id equals value by construction
			t.Fatal("sample row ids wrong")
		}
	}
	// Deterministic.
	s2 := tbl.Sample(10, 1)
	x2, _ := s2.IntCol("x")
	for i := range x {
		if x[i] != x2[i] {
			t.Fatal("sample not deterministic")
		}
	}
	// Oversized sample returns a full copy.
	if tbl.Sample(1000, 1).NumRows() != 100 {
		t.Fatal("oversized sample wrong")
	}
}
