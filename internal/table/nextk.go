package table

import (
	"fmt"
	"sort"
)

// NextK implements Ringo's temporal predecessor-successor join (§2.3):
// within each group of rows sharing groupCol, rows are ordered by orderCol
// and each row is joined with its next k successors. The output schema is
// the table's schema twice, with "-1" suffixes on the predecessor columns
// and "-2" on the successor columns; projecting a node column from each side
// yields an edge table for a temporal-order graph (e.g. "users who posted
// right after each other in the same thread").
//
// orderCol must be numeric. Ties in orderCol are broken by row order, so the
// result is deterministic. k must be at least 1.
func (t *Table) NextK(groupCol, orderCol string, k int) (*Table, error) {
	if k < 1 {
		return nil, fmt.Errorf("table: NextK with k=%d", k)
	}
	gi := t.ColIndex(groupCol)
	if gi < 0 {
		return nil, fmt.Errorf("table: no column %q", groupCol)
	}
	if _, err := t.numericAsFloat(orderCol); err != nil {
		return nil, err
	}
	ord, _ := t.numericAsFloat(orderCol)

	ids, groups, err := t.Group(groupCol)
	if err != nil {
		return nil, err
	}
	// Bucket row indices per group, then order each bucket by orderCol.
	buckets := make([][]int32, groups)
	for row, g := range ids {
		buckets[g] = append(buckets[g], int32(row))
	}
	pairs := 0
	for _, b := range buckets {
		sort.SliceStable(b, func(x, y int) bool { return ord[b[x]] < ord[b[y]] })
		n := len(b)
		for i := 0; i < n; i++ {
			succ := n - 1 - i
			if succ > k {
				succ = k
			}
			pairs += succ
		}
	}

	out, err := newJoinOutput(t, t, pairs)
	if err != nil {
		return nil, err
	}
	remap := remapPool(t, out)
	nCols := len(t.cols)
	at := 0
	for _, b := range buckets {
		for i := 0; i < len(b); i++ {
			for j := i + 1; j <= i+k && j < len(b); j++ {
				pred, succ := int(b[i]), int(b[j])
				for c := range t.cols {
					switch t.cols[c].Type {
					case Float:
						out.floats[c][at] = t.floats[c][pred]
						out.floats[nCols+c][at] = t.floats[c][succ]
					case String:
						out.ints[c][at] = remap[t.ints[c][pred]]
						out.ints[nCols+c][at] = remap[t.ints[c][succ]]
					default:
						out.ints[c][at] = t.ints[c][pred]
						out.ints[nCols+c][at] = t.ints[c][succ]
					}
				}
				out.rowIDs[at] = int64(at)
				at++
			}
		}
	}
	out.nextID = int64(pairs)
	return out, nil
}
