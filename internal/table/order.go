package table

import (
	"fmt"
	"math/rand"
	"sort"
)

// OrderBy sorts the table rows in place by the named columns (most
// significant first). desc sorts descending. The sort is stable, and row
// identifiers travel with their rows.
func (t *Table) OrderBy(desc bool, cols ...string) error {
	if len(cols) == 0 {
		return fmt.Errorf("table: OrderBy with no columns")
	}
	idx := make([]int, len(cols))
	for k, name := range cols {
		i := t.ColIndex(name)
		if i < 0 {
			return fmt.Errorf("table: no column %q", name)
		}
		idx[k] = i
	}
	n := t.NumRows()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	less := func(a, b int) bool {
		for _, i := range idx {
			switch t.cols[i].Type {
			case Int:
				va, vb := t.ints[i][a], t.ints[i][b]
				if va != vb {
					return va < vb
				}
			case Float:
				va, vb := t.floats[i][a], t.floats[i][b]
				if va != vb {
					return va < vb
				}
			default:
				va := t.pool.Get(int32(t.ints[i][a]))
				vb := t.pool.Get(int32(t.ints[i][b]))
				if va != vb {
					return va < vb
				}
			}
		}
		return false
	}
	if desc {
		asc := less
		less = func(a, b int) bool { return asc(b, a) }
	}
	sort.SliceStable(perm, func(x, y int) bool { return less(perm[x], perm[y]) })
	t.applyPermutation(perm)
	return nil
}

// applyPermutation reorders all rows so that new row r holds old row
// perm[r].
func (t *Table) applyPermutation(perm []int) {
	n := len(perm)
	for i := range t.cols {
		if t.cols[i].Type == Float {
			src := t.floats[i]
			dst := make([]float64, n)
			for r, p := range perm {
				dst[r] = src[p]
			}
			t.floats[i] = dst
		} else {
			src := t.ints[i]
			dst := make([]int64, n)
			for r, p := range perm {
				dst[r] = src[p]
			}
			t.ints[i] = dst
		}
	}
	ids := make([]int64, n)
	for r, p := range perm {
		ids[r] = t.rowIDs[p]
	}
	t.rowIDs = ids
}

// Sample returns a new table of n rows drawn uniformly without replacement
// (all rows if n exceeds the row count), in input order, preserving row
// identifiers. Deterministic for a fixed seed — the usual first step of
// exploratory analysis on a large table.
func (t *Table) Sample(n int, seed int64) *Table {
	total := t.NumRows()
	if n >= total {
		return t.Clone()
	}
	rng := rand.New(rand.NewSource(seed))
	chosen := rng.Perm(total)[:n]
	sort.Ints(chosen)
	out := t.freshLike(n)
	for _, row := range chosen {
		out.appendRowFrom(t, row)
	}
	out.nextID = t.nextID
	return out
}

// Head returns a new table holding the first n rows (all rows if n exceeds
// the row count), preserving row identifiers. Combined with OrderBy it
// implements top-K queries such as "top Java experts by PageRank".
func (t *Table) Head(n int) *Table {
	if n > t.NumRows() {
		n = t.NumRows()
	}
	out := t.freshLike(n)
	for row := 0; row < n; row++ {
		out.appendRowFrom(t, row)
	}
	out.nextID = t.nextID
	return out
}
