package table

import "fmt"

// This file defines the resolved predicate representation shared by the two
// execution backends. Parsing (expr.go) and the Select API both lower to a
// tree of predNodes whose leaves are column-resolved, constant-coerced
// comparisons; the vectorized backend (vector.go) evaluates the tree
// column-at-a-time into a selection bitmap, and the closure backend below
// compiles it to a per-row func — kept as the compatibility path
// (CompileExpr, SelectFunc) and as the equivalence oracle the fuzz and
// randomized tests check the vectorized path against.

type predKind uint8

const (
	predLeaf predKind = iota
	predAnd
	predOr
	predNot
)

// leafPred is one column-vs-constant comparison, resolved against a table:
// the column position, the operator, and the constant coerced to the
// column's runtime representation.
type leafPred struct {
	col int
	op  CmpOp
	typ Type
	// ic carries the constant for Int comparisons and for interned-id
	// string equality; fc for Float comparisons; sc holds the string
	// constant for ordering comparisons over string columns.
	ic int64
	fc float64
	sc string
	// missing marks a string EQ/NE whose constant was never interned in the
	// table's pool: it matches nothing (EQ) or everything (NE) without
	// touching the column.
	missing bool
}

// predNode is a node of a parsed predicate tree. left/right are set for
// connectives (right is nil for predNot); leaf is set for predLeaf.
type predNode struct {
	kind        predKind
	left, right *predNode
	leaf        leafPred
}

// resolveLeaf validates the named column and coerces the constant to the
// column's type, producing the leaf both backends execute.
func (t *Table) resolveLeaf(col string, op CmpOp, val any) (leafPred, error) {
	i := t.ColIndex(col)
	if i < 0 {
		return leafPred{}, fmt.Errorf("table: no column %q", col)
	}
	l := leafPred{col: i, op: op, typ: t.cols[i].Type}
	switch l.typ {
	case Int:
		c, ok := toInt64(val)
		if !ok {
			return leafPred{}, fmt.Errorf("table: Select on int column %q with %T constant", col, val)
		}
		l.ic = c
	case Float:
		c, ok := toFloat64(val)
		if !ok {
			return leafPred{}, fmt.Errorf("table: Select on float column %q with %T constant", col, val)
		}
		l.fc = c
	default:
		s, ok := val.(string)
		if !ok {
			return leafPred{}, fmt.Errorf("table: Select on string column %q with %T constant", col, val)
		}
		l.sc = s
		if op == EQ || op == NE {
			// Equality compares interned ids. A never-interned constant
			// matches nothing (EQ) or everything (NE).
			id, interned := t.pool.Lookup(s)
			if !interned {
				l.missing = true
			} else {
				l.ic = int64(id)
			}
		}
	}
	return l, nil
}

// leafFunc compiles a resolved leaf to a per-row predicate, the row-at-a-time
// backend. Benchmarked in Table 4 of the paper: "rows are chosen based on a
// comparison with a constant value".
func (t *Table) leafFunc(l leafPred) func(row int) bool {
	switch l.typ {
	case Int:
		data, c, op := t.ints[l.col], l.ic, l.op
		return func(row int) bool { return cmpInt(data[row], c, op) }
	case Float:
		data, c, op := t.floats[l.col], l.fc, l.op
		return func(row int) bool { return cmpFloat(data[row], c, op) }
	default:
		if l.op == EQ || l.op == NE {
			if l.missing {
				if l.op == EQ {
					return func(row int) bool { return false }
				}
				return func(row int) bool { return true }
			}
			data, c, op := t.ints[l.col], l.ic, l.op
			return func(row int) bool { return cmpInt(data[row], c, op) }
		}
		data, pool, s, op := t.ints[l.col], t.pool, l.sc, l.op
		return func(row int) bool { return cmpString(pool.Get(int32(data[row])), s, op) }
	}
}

// compileNode lowers a predicate tree to the closure chain of the
// row-at-a-time backend.
func (t *Table) compileNode(n *predNode) func(row int) bool {
	switch n.kind {
	case predLeaf:
		return t.leafFunc(n.leaf)
	case predNot:
		inner := t.compileNode(n.left)
		return func(row int) bool { return !inner(row) }
	case predAnd:
		l, r := t.compileNode(n.left), t.compileNode(n.right)
		return func(row int) bool { return l(row) && r(row) }
	default: // predOr
		l, r := t.compileNode(n.left), t.compileNode(n.right)
		return func(row int) bool { return l(row) || r(row) }
	}
}

// compilePred resolves and compiles a single comparison to a per-row
// predicate — the closure-path equivalent of one leaf.
func (t *Table) compilePred(col string, op CmpOp, val any) (func(row int) bool, error) {
	l, err := t.resolveLeaf(col, op, val)
	if err != nil {
		return nil, err
	}
	return t.leafFunc(l), nil
}
