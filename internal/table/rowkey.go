package table

import (
	"encoding/binary"
	"fmt"
	"math"
)

// rowKeyEncoder builds canonical byte encodings of row values over a set of
// columns, used as map keys for grouping, distinct and set operations.
// String cells are encoded by content (length-prefixed bytes) so keys are
// comparable across tables with different pools.
type rowKeyEncoder struct {
	t    *Table
	cols []int
	buf  []byte
}

func newRowKeyEncoder(t *Table, names []string) (*rowKeyEncoder, error) {
	cols := make([]int, len(names))
	for k, name := range names {
		i := t.ColIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("table: no column %q", name)
		}
		cols[k] = i
	}
	return &rowKeyEncoder{t: t, cols: cols}, nil
}

// key returns the canonical encoding of row over the encoder's columns. The
// returned string is freshly allocated and safe to retain.
func (e *rowKeyEncoder) key(row int) string {
	e.buf = e.buf[:0]
	for _, i := range e.cols {
		switch e.t.cols[i].Type {
		case Int:
			e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(e.t.ints[i][row]))
		case Float:
			e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(e.t.floats[i][row]))
		default:
			s := e.t.pool.Get(int32(e.t.ints[i][row]))
			e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(s)))
			e.buf = append(e.buf, s...)
		}
	}
	return string(e.buf)
}

// sameSchema reports whether two tables have identical column names and
// types in the same order, the requirement for set operations.
func sameSchema(a, b *Table) bool {
	if len(a.cols) != len(b.cols) {
		return false
	}
	for i := range a.cols {
		if a.cols[i] != b.cols[i] {
			return false
		}
	}
	return true
}
