package table

import (
	"fmt"

	"ringo/internal/par"
)

// CmpOp is a comparison operator for Select predicates.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the usual symbol for the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "=="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

func cmpInt(a, b int64, op CmpOp) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

func cmpFloat(a, b float64, op CmpOp) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

func cmpString(a, b string, op CmpOp) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

// compilepred returns a per-row predicate comparing the named column against
// the constant val with op. Benchmarked in Table 4 of the paper: "rows are
// chosen based on a comparison with a constant value".
func (t *Table) compilePred(col string, op CmpOp, val any) (func(row int) bool, error) {
	i := t.ColIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("table: no column %q", col)
	}
	switch t.cols[i].Type {
	case Int:
		c, ok := toInt64(val)
		if !ok {
			return nil, fmt.Errorf("table: Select on int column %q with %T constant", col, val)
		}
		data := t.ints[i]
		return func(row int) bool { return cmpInt(data[row], c, op) }, nil
	case Float:
		c, ok := toFloat64(val)
		if !ok {
			return nil, fmt.Errorf("table: Select on float column %q with %T constant", col, val)
		}
		data := t.floats[i]
		return func(row int) bool { return cmpFloat(data[row], c, op) }, nil
	default:
		s, ok := val.(string)
		if !ok {
			return nil, fmt.Errorf("table: Select on string column %q with %T constant", col, val)
		}
		data := t.ints[i]
		if op == EQ || op == NE {
			// Fast path: compare interned ids. A never-interned constant
			// matches nothing (EQ) or everything (NE).
			id, interned := t.pool.Lookup(s)
			if !interned {
				if op == EQ {
					return func(row int) bool { return false }, nil
				}
				return func(row int) bool { return true }, nil
			}
			c := int64(id)
			return func(row int) bool { return cmpInt(data[row], c, op) }, nil
		}
		pool := t.pool
		return func(row int) bool { return cmpString(pool.Get(int32(data[row])), s, op) }, nil
	}
}

// Select returns a new table containing the rows whose col value compares
// true against val under op. Row identifiers are preserved.
func (t *Table) Select(col string, op CmpOp, val any) (*Table, error) {
	pred, err := t.compilePred(col, op, val)
	if err != nil {
		return nil, err
	}
	return t.selectPred(pred, false), nil
}

// SelectInPlace filters the table in place, keeping rows matching the
// predicate, and reports the number of rows kept. Row identifiers of kept
// rows are unchanged — this is Ringo's persistent-id in-place selection.
func (t *Table) SelectInPlace(col string, op CmpOp, val any) (int, error) {
	pred, err := t.compilePred(col, op, val)
	if err != nil {
		return 0, err
	}
	out := t.selectPred(pred, true)
	*t = *out
	return t.NumRows(), nil
}

// SelectFunc returns a new table of rows for which pred returns true. pred
// receives the row index and must be safe for concurrent calls on distinct
// rows.
func (t *Table) SelectFunc(pred func(row int) bool) *Table {
	return t.selectPred(pred, false)
}

// selectPred implements parallel two-pass selection: pass 1 computes the
// per-range match counts, a prefix sum assigns disjoint output ranges, and
// pass 2 copies matching rows with no inter-worker contention — the same
// contention-free pattern Ringo uses for its parallel table operations.
func (t *Table) selectPred(pred func(row int) bool, inPlace bool) *Table {
	n := t.NumRows()
	ranges := par.Split(n, par.Workers())
	counts := make([]int, len(ranges))
	par.ForEach(len(ranges), func(k int) {
		c := 0
		for row := ranges[k].Lo; row < ranges[k].Hi; row++ {
			if pred(row) {
				c++
			}
		}
		counts[k] = c
	})
	total := 0
	offsets := make([]int, len(ranges))
	for k, c := range counts {
		offsets[k] = total
		total += c
	}
	out := t.freshLike(total)
	// Pre-size all output columns; workers write disjoint ranges.
	for i := range out.cols {
		if out.cols[i].Type == Float {
			out.floats[i] = out.floats[i][:total]
		} else {
			out.ints[i] = out.ints[i][:total]
		}
	}
	out.rowIDs = out.rowIDs[:total]
	par.ForEach(len(ranges), func(k int) {
		w := offsets[k]
		for row := ranges[k].Lo; row < ranges[k].Hi; row++ {
			if !pred(row) {
				continue
			}
			for i := range t.cols {
				if t.cols[i].Type == Float {
					out.floats[i][w] = t.floats[i][row]
				} else {
					out.ints[i][w] = t.ints[i][row]
				}
			}
			out.rowIDs[w] = t.rowIDs[row]
			w++
		}
	})
	if inPlace {
		// In-place semantics: the caller replaces its storage with ours.
		out.nextID = t.nextID
		return out
	}
	out.nextID = t.nextID
	return out
}
