package table

import (
	"fmt"
	"sync/atomic"

	"ringo/internal/bitmap"
	"ringo/internal/par"
)

// CmpOp is a comparison operator for Select predicates.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the usual symbol for the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "=="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

func cmpInt(a, b int64, op CmpOp) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

func cmpFloat(a, b float64, op CmpOp) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

func cmpString(a, b string, op CmpOp) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	default:
		return a >= b
	}
}

// filterRows counts rows scanned by every selection path (vectorized,
// closure, indexed) process-wide; the server reads it as the
// ringo_table_filter_rows_total counter. One atomic add per operation.
var filterRows atomic.Int64

// FilterRowsTotal reports the cumulative number of rows scanned by
// selection operations since process start.
func FilterRowsTotal() int64 { return filterRows.Load() }

// Select returns a new table containing the rows whose col value compares
// true against val under op. Row identifiers are preserved. The column is
// scanned with the vectorized column-at-a-time kernel.
func (t *Table) Select(col string, op CmpOp, val any) (*Table, error) {
	leaf, err := t.resolveLeaf(col, op, val)
	if err != nil {
		return nil, err
	}
	return t.selectBitmap(t.leafBitmap(leaf)), nil
}

// SelectInPlace filters the table in place, keeping rows matching the
// predicate, and reports the number of rows kept. Row identifiers of kept
// rows are unchanged — this is Ringo's persistent-id in-place selection.
//
// Aliasing contract: the receiver keeps its own column storage (rows are
// compacted forward and the slices truncated, preserving capacity) and its
// string-pool identity — a *strpool.Pool obtained from Pool() before the
// call remains the table's pool after it. Raw column slices previously
// obtained from IntCol/FloatCol alias the compacted storage.
func (t *Table) SelectInPlace(col string, op CmpOp, val any) (int, error) {
	leaf, err := t.resolveLeaf(col, op, val)
	if err != nil {
		return 0, err
	}
	return t.compactBitmap(t.leafBitmap(leaf)), nil
}

// SelectBitmap returns a new table of the rows whose bits are set in bm,
// preserving row identifiers — the consumption step for externally built
// selection vectors such as EqIndex lookups. bm must be NumRows bits long
// and is only read.
func (t *Table) SelectBitmap(bm *bitmap.Bitmap) (*Table, error) {
	if bm.Len() != t.NumRows() {
		return nil, fmt.Errorf("table: SelectBitmap with %d bits for %d rows", bm.Len(), t.NumRows())
	}
	return t.selectBitmap(bm), nil
}

// SelectFunc returns a new table of rows for which pred returns true. pred
// receives the row index and must be safe for concurrent calls on distinct
// rows. This is the row-at-a-time compatibility path (arbitrary Go
// predicates can't vectorize) and the oracle the vectorized path is tested
// against.
func (t *Table) SelectFunc(pred func(row int) bool) *Table {
	return t.selectPred(pred)
}

// selectPred implements parallel two-pass selection over a per-row
// predicate: pass 1 computes the per-range match counts, a prefix sum
// assigns disjoint output ranges, and pass 2 copies matching rows with no
// inter-worker contention — the same contention-free pattern Ringo uses for
// its parallel table operations.
func (t *Table) selectPred(pred func(row int) bool) *Table {
	n := t.NumRows()
	filterRows.Add(int64(n))
	ranges := par.Split(n, par.Workers())
	counts := make([]int, len(ranges))
	par.ForEach(len(ranges), func(k int) {
		c := 0
		for row := ranges[k].Lo; row < ranges[k].Hi; row++ {
			if pred(row) {
				c++
			}
		}
		counts[k] = c
	})
	offsets, total := prefixSum(counts)
	out := t.preparedOutput(total)
	par.ForEach(len(ranges), func(k int) {
		w := offsets[k]
		for row := ranges[k].Lo; row < ranges[k].Hi; row++ {
			if !pred(row) {
				continue
			}
			for i := range t.cols {
				if t.cols[i].Type == Float {
					out.floats[i][w] = t.floats[i][row]
				} else {
					out.ints[i][w] = t.ints[i][row]
				}
			}
			out.rowIDs[w] = t.rowIDs[row]
			w++
		}
	})
	return out
}

// selectBitmap materializes the rows selected by bm into a new table with
// the same two-pass contention-free layout as selectPred: per-range
// popcounts, a prefix sum, then each worker gathers its rows
// column-at-a-time into a disjoint output range.
func (t *Table) selectBitmap(bm *bitmap.Bitmap) *Table {
	n := t.NumRows()
	filterRows.Add(int64(n))
	ranges := par.Split(n, par.Workers())
	counts := make([]int, len(ranges))
	par.ForEach(len(ranges), func(k int) {
		counts[k] = bm.CountRange(ranges[k].Lo, ranges[k].Hi)
	})
	offsets, total := prefixSum(counts)
	out := t.preparedOutput(total)
	par.ForEach(len(ranges), func(k int) {
		if counts[k] == 0 {
			return
		}
		// Decode the selection vector once per range, then gather each
		// column with a tight loop over the row indices.
		sel := make([]int32, 0, counts[k])
		bm.RangeBits(ranges[k].Lo, ranges[k].Hi, func(row int) {
			sel = append(sel, int32(row))
		})
		base := offsets[k]
		for i := range t.cols {
			if t.cols[i].Type == Float {
				src, dst := t.floats[i], out.floats[i]
				for j, row := range sel {
					dst[base+j] = src[row]
				}
			} else {
				src, dst := t.ints[i], out.ints[i]
				for j, row := range sel {
					dst[base+j] = src[row]
				}
			}
		}
		dst := out.rowIDs
		for j, row := range sel {
			dst[base+j] = t.rowIDs[row]
		}
	})
	return out
}

// compactBitmap keeps only the rows selected by bm, compacting every column
// forward in place (parallel across columns) and truncating to the kept
// count, which it returns. Storage capacity, pool identity and the row ids
// of kept rows are all preserved — the in-place aliasing contract documented
// on SelectInPlace.
func (t *Table) compactBitmap(bm *bitmap.Bitmap) int {
	n := t.NumRows()
	filterRows.Add(int64(n))
	total := bm.Count()
	if total == n {
		return total
	}
	// One task per column plus one for the row ids; each compacts forward
	// (write index never passes read index) so no scratch copy is needed.
	par.ForEach(len(t.cols)+1, func(ci int) {
		w := 0
		if ci == len(t.cols) {
			ids := t.rowIDs
			bm.Range(func(row int) {
				ids[w] = ids[row]
				w++
			})
			t.rowIDs = ids[:total]
			return
		}
		if t.cols[ci].Type == Float {
			data := t.floats[ci]
			bm.Range(func(row int) {
				data[w] = data[row]
				w++
			})
			t.floats[ci] = data[:total]
			return
		}
		data := t.ints[ci]
		bm.Range(func(row int) {
			data[w] = data[row]
			w++
		})
		t.ints[ci] = data[:total]
	})
	return total
}

// preparedOutput returns a fresh table like t with every column and the row
// id slice pre-sized to total rows, ready for disjoint-range parallel fills.
func (t *Table) preparedOutput(total int) *Table {
	out := t.freshLike(total)
	for i := range out.cols {
		if out.cols[i].Type == Float {
			out.floats[i] = out.floats[i][:total]
		} else {
			out.ints[i] = out.ints[i][:total]
		}
	}
	out.rowIDs = out.rowIDs[:total]
	out.nextID = t.nextID
	return out
}

// prefixSum converts per-range counts to starting offsets, returning the
// offsets and the grand total.
func prefixSum(counts []int) (offsets []int, total int) {
	offsets = make([]int, len(counts))
	for k, c := range counts {
		offsets[k] = total
		total += c
	}
	return offsets, total
}
