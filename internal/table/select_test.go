package table

import (
	"testing"
	"testing/quick"
)

func TestSelectIntOps(t *testing.T) {
	tbl := postsTable(t)
	cases := []struct {
		op   CmpOp
		val  int64
		want int
	}{
		{EQ, 100, 2}, {NE, 100, 4}, {LT, 200, 2}, {LE, 200, 4}, {GT, 200, 2}, {GE, 200, 4},
	}
	for _, c := range cases {
		got, err := tbl.Select("UserId", c.op, c.val)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != c.want {
			t.Fatalf("Select(UserId %v %d) = %d rows, want %d", c.op, c.val, got.NumRows(), c.want)
		}
	}
}

func TestSelectStringEqualityFastPath(t *testing.T) {
	tbl := postsTable(t)
	java, err := tbl.Select("Tag", EQ, "Java")
	if err != nil {
		t.Fatal(err)
	}
	if java.NumRows() != 4 {
		t.Fatalf("Java rows = %d", java.NumRows())
	}
	// A constant that was never interned matches nothing under EQ...
	none, err := tbl.Select("Tag", EQ, "Haskell")
	if err != nil {
		t.Fatal(err)
	}
	if none.NumRows() != 0 {
		t.Fatalf("unseen EQ matched %d rows", none.NumRows())
	}
	// ...and everything under NE.
	all, err := tbl.Select("Tag", NE, "Haskell")
	if err != nil {
		t.Fatal(err)
	}
	if all.NumRows() != 6 {
		t.Fatalf("unseen NE matched %d rows", all.NumRows())
	}
}

func TestSelectStringOrdering(t *testing.T) {
	tbl := postsTable(t)
	lt, err := tbl.Select("Tag", LT, "Java")
	if err != nil {
		t.Fatal(err)
	}
	if lt.NumRows() != 2 { // "Go" < "Java"
		t.Fatalf("Tag < Java rows = %d", lt.NumRows())
	}
}

func TestSelectFloat(t *testing.T) {
	tbl := postsTable(t)
	hi, err := tbl.Select("Score", GE, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if hi.NumRows() != 3 {
		t.Fatalf("Score >= 3 rows = %d", hi.NumRows())
	}
}

func TestSelectPreservesRowIDs(t *testing.T) {
	tbl := postsTable(t)
	sel, err := tbl.Select("Type", EQ, "answer")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 3, 5}
	if len(sel.RowIDs()) != len(want) {
		t.Fatalf("rows = %d", sel.NumRows())
	}
	for i, id := range sel.RowIDs() {
		if id != want[i] {
			t.Fatalf("row id[%d] = %d, want %d", i, id, want[i])
		}
	}
}

func TestSelectInPlace(t *testing.T) {
	tbl := postsTable(t)
	n, err := tbl.SelectInPlace("Tag", EQ, "Java")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || tbl.NumRows() != 4 {
		t.Fatalf("in-place kept %d rows, table has %d", n, tbl.NumRows())
	}
	// Original ids survive the in-place filter (persistent identifiers).
	want := []int64{0, 1, 4, 5}
	for i, id := range tbl.RowIDs() {
		if id != want[i] {
			t.Fatalf("row id[%d] = %d, want %d", i, id, want[i])
		}
	}
	// Chained in-place select still works.
	n, err = tbl.SelectInPlace("Type", EQ, "question")
	if err != nil || n != 2 {
		t.Fatalf("second in-place = (%d,%v)", n, err)
	}
}

func TestSelectErrors(t *testing.T) {
	tbl := postsTable(t)
	if _, err := tbl.Select("nope", EQ, 1); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := tbl.Select("UserId", EQ, "str"); err == nil {
		t.Fatal("string constant on int column accepted")
	}
	if _, err := tbl.Select("Tag", EQ, 7); err == nil {
		t.Fatal("int constant on string column accepted")
	}
	if _, err := tbl.Select("Score", EQ, "x"); err == nil {
		t.Fatal("string constant on float column accepted")
	}
}

func TestSelectFunc(t *testing.T) {
	tbl := postsTable(t)
	users, _ := tbl.IntCol("UserId")
	sel := tbl.SelectFunc(func(row int) bool { return users[row]%200 == 0 })
	if sel.NumRows() != 3 {
		t.Fatalf("SelectFunc rows = %d", sel.NumRows())
	}
}

func TestSelectEmptyTable(t *testing.T) {
	tbl := mustTable(t, Schema{{"a", Int}})
	sel, err := tbl.Select("a", EQ, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumRows() != 0 {
		t.Fatal("select on empty table returned rows")
	}
}

// Property: Select(EQ,v) and Select(NE,v) partition the table.
func TestSelectPartitionProperty(t *testing.T) {
	f := func(vals []int8, v int8) bool {
		tbl := MustNew(Schema{{"x", Int}})
		for _, x := range vals {
			if err := tbl.AppendRow(int64(x)); err != nil {
				return false
			}
		}
		eq, err1 := tbl.Select("x", EQ, int64(v))
		ne, err2 := tbl.Select("x", NE, int64(v))
		if err1 != nil || err2 != nil {
			return false
		}
		return eq.NumRows()+ne.NumRows() == tbl.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: LT + GE also partition, and selected rows all satisfy the
// predicate.
func TestSelectThresholdProperty(t *testing.T) {
	f := func(vals []int16, v int16) bool {
		tbl := MustNew(Schema{{"x", Int}})
		for _, x := range vals {
			if err := tbl.AppendRow(int64(x)); err != nil {
				return false
			}
		}
		lt, _ := tbl.Select("x", LT, int64(v))
		ge, _ := tbl.Select("x", GE, int64(v))
		if lt.NumRows()+ge.NumRows() != tbl.NumRows() {
			return false
		}
		col, _ := lt.IntCol("x")
		for _, x := range col {
			if x >= int64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectLargeParallelPath(t *testing.T) {
	// Enough rows that the two-pass parallel select spans multiple ranges.
	tbl := MustNew(Schema{{"x", Int}})
	const n = 50_000
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(i % 97); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := tbl.Select("x", EQ, 13)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < n; i++ {
		if i%97 == 13 {
			want++
		}
	}
	if sel.NumRows() != want {
		t.Fatalf("parallel select = %d rows, want %d", sel.NumRows(), want)
	}
	// Output preserves input order.
	col, _ := sel.IntCol("x")
	for _, x := range col {
		if x != 13 {
			t.Fatal("wrong value selected")
		}
	}
	ids := sel.RowIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("selected rows out of input order")
		}
	}
}
