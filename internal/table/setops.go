package table

import "fmt"

// Union returns a new table with the distinct rows of t and other (set
// union). Both tables must have identical schemas. Rows are emitted in
// first-occurrence order (t first) with fresh row identifiers.
func (t *Table) Union(other *Table) (*Table, error) {
	if !sameSchema(t, other) {
		return nil, fmt.Errorf("table: union: schema mismatch")
	}
	out := t.freshLike(t.NumRows())
	out.pool = t.pool.Clone()
	seen := make(map[string]struct{}, t.NumRows())
	encT, _ := newRowKeyEncoder(t, t.ColNames())
	for row := 0; row < t.NumRows(); row++ {
		k := encT.key(row)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.appendRowFrom(t, row)
	}
	encO, _ := newRowKeyEncoder(other, other.ColNames())
	remap := remapPool(other, out)
	for row := 0; row < other.NumRows(); row++ {
		k := encO.key(row)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.appendOtherRow(other, row, remap)
	}
	// Set operations produce a new table object: renumber ids densely.
	for i := range out.rowIDs {
		out.rowIDs[i] = int64(i)
	}
	out.nextID = int64(len(out.rowIDs))
	return out, nil
}

// UnionAll returns the concatenation of t and other (bag union, duplicates
// kept) with fresh row identifiers.
func (t *Table) UnionAll(other *Table) (*Table, error) {
	if !sameSchema(t, other) {
		return nil, fmt.Errorf("table: union all: schema mismatch")
	}
	out := t.freshLike(t.NumRows() + other.NumRows())
	for row := 0; row < t.NumRows(); row++ {
		out.appendRowFrom(t, row)
	}
	remap := remapPool(other, out)
	for row := 0; row < other.NumRows(); row++ {
		out.appendOtherRow(other, row, remap)
	}
	for i := range out.rowIDs {
		out.rowIDs[i] = int64(i)
	}
	out.nextID = int64(len(out.rowIDs))
	return out, nil
}

// Intersect returns the distinct rows of t that also occur in other,
// preserving t's row identifiers (first occurrence wins).
func (t *Table) Intersect(other *Table) (*Table, error) {
	if !sameSchema(t, other) {
		return nil, fmt.Errorf("table: intersect: schema mismatch")
	}
	inOther := make(map[string]struct{}, other.NumRows())
	encO, _ := newRowKeyEncoder(other, other.ColNames())
	for row := 0; row < other.NumRows(); row++ {
		inOther[encO.key(row)] = struct{}{}
	}
	out := t.freshLike(0)
	emitted := make(map[string]struct{})
	encT, _ := newRowKeyEncoder(t, t.ColNames())
	for row := 0; row < t.NumRows(); row++ {
		k := encT.key(row)
		if _, ok := inOther[k]; !ok {
			continue
		}
		if _, dup := emitted[k]; dup {
			continue
		}
		emitted[k] = struct{}{}
		out.appendRowFrom(t, row)
	}
	out.nextID = t.nextID
	return out, nil
}

// Minus returns the distinct rows of t that do not occur in other,
// preserving t's row identifiers (first occurrence wins).
func (t *Table) Minus(other *Table) (*Table, error) {
	if !sameSchema(t, other) {
		return nil, fmt.Errorf("table: minus: schema mismatch")
	}
	inOther := make(map[string]struct{}, other.NumRows())
	encO, _ := newRowKeyEncoder(other, other.ColNames())
	for row := 0; row < other.NumRows(); row++ {
		inOther[encO.key(row)] = struct{}{}
	}
	out := t.freshLike(0)
	emitted := make(map[string]struct{})
	encT, _ := newRowKeyEncoder(t, t.ColNames())
	for row := 0; row < t.NumRows(); row++ {
		k := encT.key(row)
		if _, excluded := inOther[k]; excluded {
			continue
		}
		if _, dup := emitted[k]; dup {
			continue
		}
		emitted[k] = struct{}{}
		out.appendRowFrom(t, row)
	}
	out.nextID = t.nextID
	return out, nil
}

// appendOtherRow copies row r of other (same schema) into t, translating
// string pool ids through remap and keeping other's row id (callers
// renumber afterwards when required).
func (t *Table) appendOtherRow(other *Table, r int, remap []int64) {
	for i := range t.cols {
		switch t.cols[i].Type {
		case Float:
			t.floats[i] = append(t.floats[i], other.floats[i][r])
		case String:
			t.ints[i] = append(t.ints[i], remap[other.ints[i][r]])
		default:
			t.ints[i] = append(t.ints[i], other.ints[i][r])
		}
	}
	t.rowIDs = append(t.rowIDs, other.rowIDs[r])
}
