package table

import (
	"strings"
	"testing"
)

func pairTable(t *testing.T, rows ...[2]any) *Table {
	t.Helper()
	tbl := mustTable(t, Schema{{"a", Int}, {"s", String}})
	for _, r := range rows {
		mustAppend(t, tbl, []any{r[0], r[1]})
	}
	return tbl
}

func TestUnionDistinct(t *testing.T) {
	a := pairTable(t, [2]any{1, "x"}, [2]any{2, "y"}, [2]any{1, "x"})
	b := pairTable(t, [2]any{2, "y"}, [2]any{3, "z"})
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumRows() != 3 {
		t.Fatalf("union rows = %d, want 3", u.NumRows())
	}
}

func TestUnionAllKeepsDuplicates(t *testing.T) {
	a := pairTable(t, [2]any{1, "x"})
	b := pairTable(t, [2]any{1, "x"}, [2]any{2, "y"})
	u, err := a.UnionAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumRows() != 3 {
		t.Fatalf("union all rows = %d", u.NumRows())
	}
}

func TestUnionStringPoolsDiffer(t *testing.T) {
	a := pairTable(t, [2]any{1, "left-only"})
	// b interns strings in a different order so pool ids differ.
	b := pairTable(t, [2]any{9, "zzz"}, [2]any{1, "left-only"})
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumRows() != 2 {
		t.Fatalf("union rows = %d, want 2 (content equality across pools)", u.NumRows())
	}
	found := false
	for row := 0; row < u.NumRows(); row++ {
		if u.StrAt(1, row) == "zzz" {
			found = true
		}
	}
	if !found {
		t.Fatal("union lost right-side string payload")
	}
}

func TestIntersectPreservesLeftIDs(t *testing.T) {
	a := pairTable(t, [2]any{1, "x"}, [2]any{2, "y"}, [2]any{3, "z"})
	b := pairTable(t, [2]any{3, "z"}, [2]any{1, "x"})
	i, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	if i.NumRows() != 2 {
		t.Fatalf("intersect rows = %d", i.NumRows())
	}
	if i.RowIDs()[0] != 0 || i.RowIDs()[1] != 2 {
		t.Fatalf("intersect row ids = %v", i.RowIDs())
	}
}

func TestMinus(t *testing.T) {
	a := pairTable(t, [2]any{1, "x"}, [2]any{2, "y"}, [2]any{2, "y"}, [2]any{3, "z"})
	b := pairTable(t, [2]any{2, "y"})
	m, err := a.Minus(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 2 {
		t.Fatalf("minus rows = %d", m.NumRows())
	}
	vals, _ := m.IntCol("a")
	if vals[0] != 1 || vals[1] != 3 {
		t.Fatalf("minus values = %v", vals)
	}
}

func TestSetOpsSchemaMismatch(t *testing.T) {
	a := pairTable(t)
	b := mustTable(t, Schema{{"a", Int}, {"s", Int}})
	if _, err := a.Union(b); err == nil {
		t.Fatal("union with mismatched schema accepted")
	}
	if _, err := a.UnionAll(b); err == nil {
		t.Fatal("union all with mismatched schema accepted")
	}
	if _, err := a.Intersect(b); err == nil {
		t.Fatal("intersect with mismatched schema accepted")
	}
	if _, err := a.Minus(b); err == nil {
		t.Fatal("minus with mismatched schema accepted")
	}
}

func TestSetAlgebraIdentity(t *testing.T) {
	// (A ∩ B) ∪ (A − B) has the same distinct rows as A.
	a := pairTable(t, [2]any{1, "x"}, [2]any{2, "y"}, [2]any{3, "z"}, [2]any{2, "y"})
	b := pairTable(t, [2]any{2, "y"}, [2]any{9, "q"})
	inter, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	minus, err := a.Minus(b)
	if err != nil {
		t.Fatal(err)
	}
	back, err := inter.Union(minus)
	if err != nil {
		t.Fatal(err)
	}
	distinctA, _ := a.Unique()
	if back.NumRows() != distinctA.NumRows() {
		t.Fatalf("(A∩B)∪(A−B) = %d rows, distinct(A) = %d", back.NumRows(), distinctA.NumRows())
	}
}

func TestTSVRoundTrip(t *testing.T) {
	tbl := postsTable(t)
	var sb strings.Builder
	if err := tbl.SaveTSV(&sb, true); err != nil {
		t.Fatal(err)
	}
	schema := tbl.Schema()
	back, err := LoadTSV(strings.NewReader(sb.String()), schema, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("round trip rows = %d", back.NumRows())
	}
	for row := 0; row < tbl.NumRows(); row++ {
		for col := 0; col < tbl.NumCols(); col++ {
			if tbl.Value(col, row) != back.Value(col, row) {
				t.Fatalf("cell (%d,%d): %v != %v", col, row, tbl.Value(col, row), back.Value(col, row))
			}
		}
	}
}

func TestTSVSkipsCommentsAndBlanks(t *testing.T) {
	in := "# edge list\n1\t2\n\n3\t4\n"
	tbl, err := LoadTSV(strings.NewReader(in), Schema{{"src", Int}, {"dst", Int}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestTSVHeaderSkipped(t *testing.T) {
	in := "src\tdst\n1\t2\n"
	tbl, err := LoadTSV(strings.NewReader(in), Schema{{"src", Int}, {"dst", Int}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestTSVParseErrors(t *testing.T) {
	if _, err := LoadTSV(strings.NewReader("abc\t2\n"), Schema{{"a", Int}, {"b", Int}}, false); err == nil {
		t.Fatal("bad int accepted")
	}
	if _, err := LoadTSV(strings.NewReader("1\n"), Schema{{"a", Int}, {"b", Int}}, false); err == nil {
		t.Fatal("missing field accepted")
	}
	if _, err := LoadTSV(strings.NewReader("x\t1.5.2\n"), Schema{{"a", String}, {"b", Float}}, false); err == nil {
		t.Fatal("bad float accepted")
	}
}

func TestTSVFileRoundTrip(t *testing.T) {
	tbl := postsTable(t)
	path := t.TempDir() + "/posts.tsv"
	if err := tbl.SaveTSVFile(path, false); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTSVFile(path, tbl.Schema(), false)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("rows = %d", back.NumRows())
	}
}
