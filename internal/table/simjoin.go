package table

import (
	"fmt"
	"math"
)

// Metric enumerates distance metrics for SimJoin.
type Metric int

// Distance metrics over numeric column vectors.
const (
	// L1 is Manhattan distance (sum of absolute coordinate differences).
	L1 Metric = iota
	// L2 is Euclidean distance.
	L2
	// LInf is Chebyshev distance (max absolute coordinate difference).
	LInf
)

func distance(a, b []float64, m Metric) float64 {
	switch m {
	case L1:
		var d float64
		for i := range a {
			d += math.Abs(a[i] - b[i])
		}
		return d
	case L2:
		var d float64
		for i := range a {
			diff := a[i] - b[i]
			d += diff * diff
		}
		return math.Sqrt(d)
	default:
		var d float64
		for i := range a {
			if diff := math.Abs(a[i] - b[i]); diff > d {
				d = diff
			}
		}
		return d
	}
}

// SimJoin joins t (left) with right, emitting one output row for each pair
// of rows whose numeric feature vectors — taken from leftCols and rightCols,
// which must be numeric and of equal count — are within threshold under the
// given metric. This is the advanced graph-construction operation from §2.3:
// "SimJoin, which joins two records if their distance is smaller than a
// given threshold", used to create edges based on node similarity.
//
// The output schema is the left schema, the right schema (colliding names
// suffixed -1/-2 as in Join), and a trailing Float column "SimDist" holding
// the pair distance. The implementation buckets the right rows into a grid
// of threshold-sized cells and probes only the 3^d neighboring cells per
// left row, avoiding the quadratic all-pairs scan.
func (t *Table) SimJoin(right *Table, leftCols, rightCols []string, threshold float64, metric Metric) (*Table, error) {
	if len(leftCols) == 0 || len(leftCols) != len(rightCols) {
		return nil, fmt.Errorf("table: SimJoin needs matching non-empty column lists, got %d and %d",
			len(leftCols), len(rightCols))
	}
	if threshold < 0 || math.IsNaN(threshold) || math.IsInf(threshold, 0) {
		return nil, fmt.Errorf("table: SimJoin threshold %v out of range", threshold)
	}
	d := len(leftCols)
	if d > 8 {
		return nil, fmt.Errorf("table: SimJoin supports at most 8 dimensions, got %d", d)
	}
	lvecs, err := t.featureVectors(leftCols)
	if err != nil {
		return nil, err
	}
	rvecs, err := right.featureVectors(rightCols)
	if err != nil {
		return nil, err
	}

	// Cell size of threshold guarantees that any pair within threshold under
	// L1/L2/LInf lies in the same or an adjacent cell on every axis.
	cell := threshold
	if cell == 0 {
		cell = 1 // exact-match join; all equal vectors share a cell
	}
	grid := make(map[string][]int32, right.NumRows())
	var key []byte
	cellKey := func(vec []float64) string {
		key = key[:0]
		for _, x := range vec {
			c := int64(math.Floor(x / cell))
			for s := 0; s < 64; s += 8 {
				key = append(key, byte(c>>s))
			}
		}
		return string(key)
	}
	for row := 0; row < right.NumRows(); row++ {
		k := cellKey(rvecs[row])
		grid[k] = append(grid[k], int32(row))
	}

	// Enumerate neighbor cell offsets in d dimensions: {-1,0,1}^d.
	offsets := make([][]int64, 0, 1)
	offsets = append(offsets, make([]int64, d))
	for dim := 0; dim < d; dim++ {
		cur := offsets
		offsets = nil
		for _, o := range cur {
			for _, delta := range []int64{-1, 0, 1} {
				oo := append(append([]int64(nil), o...), 0)
				oo = oo[:d]
				copy(oo, o)
				oo[dim] = delta
				offsets = append(offsets, oo)
			}
		}
	}
	// Deduplicate (construction above yields 3^d unique offsets already).

	out, err := newJoinOutput(t, right, 0)
	if err != nil {
		return nil, err
	}
	if err := out.addSimDistColumn(); err != nil {
		return nil, err
	}
	rStrRemap := remapPool(right, out)

	neighborKey := func(vec []float64, off []int64) string {
		key = key[:0]
		for dim, x := range vec {
			c := int64(math.Floor(x/cell)) + off[dim]
			for s := 0; s < 64; s += 8 {
				key = append(key, byte(c>>s))
			}
		}
		return string(key)
	}

	for lrow := 0; lrow < t.NumRows(); lrow++ {
		for _, off := range offsets {
			for _, rrow := range grid[neighborKey(lvecs[lrow], off)] {
				dist := distance(lvecs[lrow], rvecs[rrow], metric)
				if dist <= threshold {
					out.appendJoinedRow(t, lrow, right, int(rrow), rStrRemap, dist)
				}
			}
		}
	}
	for i := range out.rowIDs {
		out.rowIDs[i] = int64(i)
	}
	out.nextID = int64(len(out.rowIDs))
	return out, nil
}

func (t *Table) featureVectors(cols []string) ([][]float64, error) {
	colData := make([][]float64, len(cols))
	for k, name := range cols {
		vals, err := t.numericAsFloat(name)
		if err != nil {
			return nil, fmt.Errorf("table: SimJoin: %w", err)
		}
		colData[k] = vals
	}
	vecs := make([][]float64, t.NumRows())
	flat := make([]float64, t.NumRows()*len(cols))
	for row := 0; row < t.NumRows(); row++ {
		v := flat[row*len(cols) : (row+1)*len(cols)]
		for k := range cols {
			v[k] = colData[k][row]
		}
		vecs[row] = v
	}
	return vecs, nil
}

func (t *Table) addSimDistColumn() error {
	name := "SimDist"
	for t.ColIndex(name) >= 0 {
		name += "_"
	}
	t.index[name] = len(t.cols)
	t.cols = append(t.cols, Column{name, Float})
	t.ints = append(t.ints, nil)
	t.floats = append(t.floats, nil)
	return nil
}

// appendJoinedRow appends left row lrow joined with right row rrow plus the
// trailing distance column.
func (t *Table) appendJoinedRow(left *Table, lrow int, right *Table, rrow int, rStrRemap []int64, dist float64) {
	nLeft := len(left.cols)
	for i := range left.cols {
		if left.cols[i].Type == Float {
			t.floats[i] = append(t.floats[i], left.floats[i][lrow])
		} else {
			t.ints[i] = append(t.ints[i], left.ints[i][lrow])
		}
	}
	for j := range right.cols {
		o := nLeft + j
		switch right.cols[j].Type {
		case Float:
			t.floats[o] = append(t.floats[o], right.floats[j][rrow])
		case String:
			t.ints[o] = append(t.ints[o], rStrRemap[right.ints[j][rrow]])
		default:
			t.ints[o] = append(t.ints[o], right.ints[j][rrow])
		}
	}
	last := len(t.cols) - 1
	t.floats[last] = append(t.floats[last], dist)
	t.rowIDs = append(t.rowIDs, 0) // renumbered by the caller
}
