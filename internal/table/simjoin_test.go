package table

import (
	"math"
	"testing"
	"testing/quick"
)

func pointsTable(t *testing.T, xs ...float64) *Table {
	t.Helper()
	tbl := mustTable(t, Schema{{"id", Int}, {"x", Float}})
	for i, x := range xs {
		mustAppend(t, tbl, []any{i, x})
	}
	return tbl
}

func TestSimJoin1D(t *testing.T) {
	a := pointsTable(t, 0.0, 10.0, 20.0)
	b := pointsTable(t, 0.5, 9.0, 100.0)
	j, err := a.SimJoin(b, []string{"x"}, []string{"x"}, 1.5, L2)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs within 1.5: (0.0,0.5) and (10.0,9.0).
	if j.NumRows() != 2 {
		t.Fatalf("simjoin rows = %d, want 2", j.NumRows())
	}
	if j.ColIndex("SimDist") < 0 {
		t.Fatalf("columns = %v", j.ColNames())
	}
	d, _ := j.FloatCol("SimDist")
	for _, dist := range d {
		if dist > 1.5 {
			t.Fatalf("emitted pair with distance %v", dist)
		}
	}
}

func TestSimJoin2DMetrics(t *testing.T) {
	a := mustTable(t, Schema{{"x", Float}, {"y", Float}})
	mustAppend(t, a, []any{0.0, 0.0})
	b := mustTable(t, Schema{{"x", Float}, {"y", Float}})
	mustAppend(t, b, []any{3.0, 4.0}) // L2 dist 5, L1 dist 7, LInf dist 4
	for _, c := range []struct {
		m         Metric
		threshold float64
		want      int
	}{
		{L2, 5.0, 1}, {L2, 4.9, 0},
		{L1, 7.0, 1}, {L1, 6.9, 0},
		{LInf, 4.0, 1}, {LInf, 3.9, 0},
	} {
		j, err := a.SimJoin(b, []string{"x", "y"}, []string{"x", "y"}, c.threshold, c.m)
		if err != nil {
			t.Fatal(err)
		}
		if j.NumRows() != c.want {
			t.Fatalf("metric %v threshold %v: rows = %d, want %d", c.m, c.threshold, j.NumRows(), c.want)
		}
	}
}

func TestSimJoinIntColumnsAccepted(t *testing.T) {
	a := mustTable(t, Schema{{"v", Int}})
	mustAppend(t, a, []any{10}, []any{20})
	b := mustTable(t, Schema{{"w", Int}})
	mustAppend(t, b, []any{11}, []any{100})
	j, err := a.SimJoin(b, []string{"v"}, []string{"w"}, 2, L1)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 1 {
		t.Fatalf("rows = %d", j.NumRows())
	}
}

func TestSimJoinErrors(t *testing.T) {
	a := pointsTable(t, 1)
	b := pointsTable(t, 2)
	if _, err := a.SimJoin(b, nil, nil, 1, L2); err == nil {
		t.Fatal("empty columns accepted")
	}
	if _, err := a.SimJoin(b, []string{"x"}, []string{"x", "x"}, 1, L2); err == nil {
		t.Fatal("mismatched column counts accepted")
	}
	if _, err := a.SimJoin(b, []string{"x"}, []string{"x"}, -1, L2); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := a.SimJoin(b, []string{"x"}, []string{"x"}, math.NaN(), L2); err == nil {
		t.Fatal("NaN threshold accepted")
	}
	if _, err := a.SimJoin(b, []string{"id", "x", "x", "x", "x", "x", "x", "x", "x"},
		[]string{"id", "x", "x", "x", "x", "x", "x", "x", "x"}, 1, L2); err == nil {
		t.Fatal("9 dimensions accepted")
	}
	c := mustTable(t, Schema{{"s", String}})
	mustAppend(t, c, []any{"a"})
	if _, err := a.SimJoin(c, []string{"x"}, []string{"s"}, 1, L2); err == nil {
		t.Fatal("string column accepted")
	}
}

// Property: SimJoin equals the brute-force all-pairs filter.
func TestSimJoinMatchesBruteForce(t *testing.T) {
	f := func(as, bs []int8, thr uint8) bool {
		if len(as) > 40 {
			as = as[:40]
		}
		if len(bs) > 40 {
			bs = bs[:40]
		}
		a := MustNew(Schema{{"x", Float}})
		for _, v := range as {
			if err := a.AppendRow(float64(v)); err != nil {
				return false
			}
		}
		b := MustNew(Schema{{"x", Float}})
		for _, v := range bs {
			if err := b.AppendRow(float64(v)); err != nil {
				return false
			}
		}
		threshold := float64(thr % 10)
		j, err := a.SimJoin(b, []string{"x"}, []string{"x"}, threshold, L2)
		if err != nil {
			return false
		}
		want := 0
		for _, x := range as {
			for _, y := range bs {
				if math.Abs(float64(x)-float64(y)) <= threshold {
					want++
				}
			}
		}
		return j.NumRows() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func eventsTable(t *testing.T) *Table {
	t.Helper()
	tbl := mustTable(t, Schema{{"Thread", Int}, {"Time", Int}, {"User", String}})
	mustAppend(t, tbl,
		[]any{1, 10, "a"},
		[]any{1, 20, "b"},
		[]any{1, 30, "c"},
		[]any{2, 5, "d"},
		[]any{2, 15, "e"},
		[]any{3, 1, "f"},
	)
	return tbl
}

func TestNextK1(t *testing.T) {
	tbl := eventsTable(t)
	nk, err := tbl.NextK("Thread", "Time", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Thread 1: a→b, b→c. Thread 2: d→e. Thread 3: none.
	if nk.NumRows() != 3 {
		t.Fatalf("NextK(1) rows = %d, want 3", nk.NumRows())
	}
	if nk.ColIndex("User-1") < 0 || nk.ColIndex("User-2") < 0 {
		t.Fatalf("columns = %v", nk.ColNames())
	}
	pred := nk.ColIndex("User-1")
	succ := nk.ColIndex("User-2")
	pairs := map[string]bool{}
	for row := 0; row < nk.NumRows(); row++ {
		pairs[nk.StrAt(pred, row)+"->"+nk.StrAt(succ, row)] = true
	}
	for _, want := range []string{"a->b", "b->c", "d->e"} {
		if !pairs[want] {
			t.Fatalf("missing pair %s in %v", want, pairs)
		}
	}
}

func TestNextK2(t *testing.T) {
	tbl := eventsTable(t)
	nk, err := tbl.NextK("Thread", "Time", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Thread 1 adds a→c; total 4 pairs.
	if nk.NumRows() != 4 {
		t.Fatalf("NextK(2) rows = %d, want 4", nk.NumRows())
	}
	// Successor times strictly after predecessor times within each pair.
	tp, _ := nk.IntCol("Time-1")
	ts, _ := nk.IntCol("Time-2")
	for i := range tp {
		if tp[i] >= ts[i] {
			t.Fatalf("pair %d not temporally ordered: %d -> %d", i, tp[i], ts[i])
		}
	}
}

func TestNextKUnsortedInput(t *testing.T) {
	tbl := mustTable(t, Schema{{"g", Int}, {"t", Float}, {"v", Int}})
	mustAppend(t, tbl,
		[]any{1, 3.0, 30},
		[]any{1, 1.0, 10},
		[]any{1, 2.0, 20},
	)
	nk, err := tbl.NextK("g", "t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if nk.NumRows() != 2 {
		t.Fatalf("rows = %d", nk.NumRows())
	}
	v1, _ := nk.IntCol("v-1")
	v2, _ := nk.IntCol("v-2")
	got := map[int64]int64{}
	for i := range v1 {
		got[v1[i]] = v2[i]
	}
	if got[10] != 20 || got[20] != 30 {
		t.Fatalf("pairs = %v", got)
	}
}

func TestNextKErrors(t *testing.T) {
	tbl := eventsTable(t)
	if _, err := tbl.NextK("Thread", "Time", 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := tbl.NextK("nope", "Time", 1); err == nil {
		t.Fatal("missing group column accepted")
	}
	if _, err := tbl.NextK("Thread", "User", 1); err == nil {
		t.Fatal("non-numeric order column accepted")
	}
}

// Property: NextK(k) pair count per group of size n is sum over positions of
// min(k, n-1-i).
func TestNextKCardinalityProperty(t *testing.T) {
	f := func(groups []uint8, k uint8) bool {
		kk := int(k%5) + 1
		tbl := MustNew(Schema{{"g", Int}, {"t", Int}})
		sizes := map[int64]int{}
		for i, g := range groups {
			gg := int64(g % 8)
			if err := tbl.AppendRow(gg, i); err != nil {
				return false
			}
			sizes[gg]++
		}
		nk, err := tbl.NextK("g", "t", kk)
		if err != nil {
			return false
		}
		want := 0
		for _, n := range sizes {
			for i := 0; i < n; i++ {
				m := n - 1 - i
				if m > kk {
					m = kk
				}
				want += m
			}
		}
		return nk.NumRows() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
