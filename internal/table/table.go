// Package table implements Ringo's native relational table objects (§2.3 of
// Perez et al., SIGMOD 2015): an in-memory column store with a typed schema
// (integer, floating point, string), persistent per-row identifiers, and the
// relational and graph-construction operations the paper describes (select,
// join, project, group & aggregate, order, set operations, SimJoin, NextK).
//
// String cells are interned in a per-table pool and stored as integer ids,
// so string equality, grouping and joining run at integer speed. Row
// identifiers are assigned once and survive in-place filtering, which lets
// users track individual records through a complex chain of operations.
package table

import (
	"fmt"
	"math"

	"ringo/internal/par"
	"ringo/internal/strpool"
)

// Type enumerates the column types Ringo supports.
type Type uint8

const (
	// Int is a 64-bit signed integer column.
	Int Type = iota
	// Float is a 64-bit floating point column.
	Float
	// String is an interned string column.
	String
)

// String returns the lowercase name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Column describes one column of a table schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema []Column

// Table is a column-store relational table. All mutating operations either
// create a new Table or are documented as in-place. A Table is safe for
// concurrent readers; writers require external synchronization.
type Table struct {
	cols   []Column
	ints   [][]int64   // per column; used by Int and String (pool ids) columns
	floats [][]float64 // per column; used by Float columns
	rowIDs []int64
	nextID int64
	pool   *strpool.Pool
	index  map[string]int
}

// New returns an empty table with the given schema. Column names must be
// non-empty and unique.
func New(schema Schema) (*Table, error) {
	return NewWithCapacity(schema, 0)
}

// NewWithCapacity returns an empty table with the given schema and column
// capacity preallocated for rows rows.
func NewWithCapacity(schema Schema, rows int) (*Table, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("table: empty schema")
	}
	t := &Table{
		cols:   append([]Column(nil), schema...),
		ints:   make([][]int64, len(schema)),
		floats: make([][]float64, len(schema)),
		rowIDs: make([]int64, 0, rows),
		pool:   strpool.New(0),
		index:  make(map[string]int, len(schema)),
	}
	for i, c := range schema {
		if c.Name == "" {
			return nil, fmt.Errorf("table: column %d has empty name", i)
		}
		if _, dup := t.index[c.Name]; dup {
			return nil, fmt.Errorf("table: duplicate column %q", c.Name)
		}
		t.index[c.Name] = i
		switch c.Type {
		case Int, String:
			t.ints[i] = make([]int64, 0, rows)
		case Float:
			t.floats[i] = make([]float64, 0, rows)
		default:
			return nil, fmt.Errorf("table: column %q has invalid type %v", c.Name, c.Type)
		}
	}
	return t, nil
}

// MustNew is New that panics on error, for statically known-good schemas.
func MustNew(schema Schema) *Table {
	t, err := New(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// FromIntColumns builds a table of Int columns directly from column slices,
// which must all have equal length. The table adopts the slices without
// copying — callers transfer ownership. This is the bulk fast path used by
// graph-to-table conversion (§2.4: threads fill a pre-allocated output
// table) and by the workload generators.
func FromIntColumns(names []string, cols [][]int64) (*Table, error) {
	if len(names) == 0 || len(names) != len(cols) {
		return nil, fmt.Errorf("table: FromIntColumns got %d names for %d columns", len(names), len(cols))
	}
	schema := make(Schema, len(names))
	for i, name := range names {
		schema[i] = Column{name, Int}
	}
	rows := len(cols[0])
	for i, c := range cols {
		if len(c) != rows {
			return nil, fmt.Errorf("table: FromIntColumns column %d has %d rows, want %d", i, len(c), rows)
		}
	}
	t, err := New(schema)
	if err != nil {
		return nil, err
	}
	for i, c := range cols {
		t.ints[i] = c
	}
	t.rowIDs = make([]int64, rows)
	for r := range t.rowIDs {
		t.rowIDs[r] = int64(r)
	}
	t.nextID = int64(rows)
	return t, nil
}

// NumRows reports the number of rows.
func (t *Table) NumRows() int { return len(t.rowIDs) }

// NumCols reports the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return append(Schema(nil), t.cols...) }

// ColNames returns the column names in schema order.
func (t *Table) ColNames() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name
	}
	return names
}

// ColIndex returns the position of the named column, or -1 if absent.
func (t *Table) ColIndex(name string) int {
	i, ok := t.index[name]
	if !ok {
		return -1
	}
	return i
}

// ColType returns the type of the named column.
func (t *Table) ColType(name string) (Type, error) {
	i := t.ColIndex(name)
	if i < 0 {
		return 0, fmt.Errorf("table: no column %q", name)
	}
	return t.cols[i].Type, nil
}

// RowIDs returns the persistent row identifiers in row order. The returned
// slice is the table's own storage; callers must not modify it.
func (t *Table) RowIDs() []int64 { return t.rowIDs }

// Pool returns the table's string pool.
func (t *Table) Pool() *strpool.Pool { return t.pool }

// AppendRow appends one row. vals must match the schema; accepted Go types
// are int, int32, int64 for Int columns, float64 (or int) for Float columns,
// and string for String columns.
func (t *Table) AppendRow(vals ...any) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("table: AppendRow got %d values for %d columns", len(vals), len(t.cols))
	}
	for i, v := range vals {
		switch t.cols[i].Type {
		case Int:
			n, ok := toInt64(v)
			if !ok {
				return fmt.Errorf("table: column %q expects int, got %T", t.cols[i].Name, v)
			}
			t.ints[i] = append(t.ints[i], n)
		case Float:
			f, ok := toFloat64(v)
			if !ok {
				return fmt.Errorf("table: column %q expects float, got %T", t.cols[i].Name, v)
			}
			t.floats[i] = append(t.floats[i], f)
		case String:
			s, ok := v.(string)
			if !ok {
				return fmt.Errorf("table: column %q expects string, got %T", t.cols[i].Name, v)
			}
			t.ints[i] = append(t.ints[i], int64(t.pool.Intern(s)))
		}
	}
	t.rowIDs = append(t.rowIDs, t.nextID)
	t.nextID++
	return nil
}

func toInt64(v any) (int64, bool) {
	switch n := v.(type) {
	case int:
		return int64(n), true
	case int32:
		return int64(n), true
	case int64:
		return n, true
	}
	return 0, false
}

func toFloat64(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	}
	return 0, false
}

// IntAt returns the integer cell at (column position, row).
func (t *Table) IntAt(col, row int) int64 { return t.ints[col][row] }

// FloatAt returns the float cell at (column position, row).
func (t *Table) FloatAt(col, row int) float64 { return t.floats[col][row] }

// StrAt returns the string cell at (column position, row).
func (t *Table) StrAt(col, row int) string {
	return t.pool.Get(int32(t.ints[col][row]))
}

// Value returns the cell at (column position, row) as an any of the column's
// natural Go type.
func (t *Table) Value(col, row int) any {
	switch t.cols[col].Type {
	case Int:
		return t.ints[col][row]
	case Float:
		return t.floats[col][row]
	default:
		return t.StrAt(col, row)
	}
}

// IntCol returns the raw int64 storage of the named Int or String column
// (pool ids for strings). The slice is shared with the table; callers that
// mutate it corrupt the table. The fast conversion paths (§2.4) copy it.
func (t *Table) IntCol(name string) ([]int64, error) {
	i := t.ColIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("table: no column %q", name)
	}
	if t.cols[i].Type == Float {
		return nil, fmt.Errorf("table: column %q is float, not int-backed", name)
	}
	return t.ints[i], nil
}

// FloatCol returns the raw float64 storage of the named Float column.
func (t *Table) FloatCol(name string) ([]float64, error) {
	i := t.ColIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("table: no column %q", name)
	}
	if t.cols[i].Type != Float {
		return nil, fmt.Errorf("table: column %q is %v, not float", name, t.cols[i].Type)
	}
	return t.floats[i], nil
}

// numericAsFloat returns column values as float64, converting Int columns.
func (t *Table) numericAsFloat(name string) ([]float64, error) {
	i := t.ColIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("table: no column %q", name)
	}
	switch t.cols[i].Type {
	case Float:
		return t.floats[i], nil
	case Int:
		out := make([]float64, len(t.ints[i]))
		for j, v := range t.ints[i] {
			out[j] = float64(v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("table: column %q is not numeric", name)
	}
}

// AddIntColumn appends a new Int column filled from vals (len == NumRows).
func (t *Table) AddIntColumn(name string, vals []int64) error {
	if len(vals) != t.NumRows() {
		return fmt.Errorf("table: AddIntColumn %q: %d values for %d rows", name, len(vals), t.NumRows())
	}
	if _, dup := t.index[name]; dup {
		return fmt.Errorf("table: duplicate column %q", name)
	}
	t.index[name] = len(t.cols)
	t.cols = append(t.cols, Column{name, Int})
	t.ints = append(t.ints, append([]int64(nil), vals...))
	t.floats = append(t.floats, nil)
	return nil
}

// AddFloatColumn appends a new Float column filled from vals.
func (t *Table) AddFloatColumn(name string, vals []float64) error {
	if len(vals) != t.NumRows() {
		return fmt.Errorf("table: AddFloatColumn %q: %d values for %d rows", name, len(vals), t.NumRows())
	}
	if _, dup := t.index[name]; dup {
		return fmt.Errorf("table: duplicate column %q", name)
	}
	t.index[name] = len(t.cols)
	t.cols = append(t.cols, Column{name, Float})
	t.ints = append(t.ints, nil)
	t.floats = append(t.floats, append([]float64(nil), vals...))
	return nil
}

// AddIntColumnFunc appends a new Int column computed per row, in parallel.
// fn must be safe for concurrent calls on distinct rows.
func (t *Table) AddIntColumnFunc(name string, fn func(row int) int64) error {
	vals := make([]int64, t.NumRows())
	par.ForEach(t.NumRows(), func(row int) { vals[row] = fn(row) })
	if _, dup := t.index[name]; dup {
		return fmt.Errorf("table: duplicate column %q", name)
	}
	t.index[name] = len(t.cols)
	t.cols = append(t.cols, Column{name, Int})
	t.ints = append(t.ints, vals)
	t.floats = append(t.floats, nil)
	return nil
}

// AddFloatColumnFunc appends a new Float column computed per row, in
// parallel.
func (t *Table) AddFloatColumnFunc(name string, fn func(row int) float64) error {
	vals := make([]float64, t.NumRows())
	par.ForEach(t.NumRows(), func(row int) { vals[row] = fn(row) })
	if _, dup := t.index[name]; dup {
		return fmt.Errorf("table: duplicate column %q", name)
	}
	t.index[name] = len(t.cols)
	t.cols = append(t.cols, Column{name, Float})
	t.ints = append(t.ints, nil)
	t.floats = append(t.floats, vals)
	return nil
}

// Rename renames a column in place.
func (t *Table) Rename(oldName, newName string) error {
	i := t.ColIndex(oldName)
	if i < 0 {
		return fmt.Errorf("table: no column %q", oldName)
	}
	if newName == "" {
		return fmt.Errorf("table: empty new column name")
	}
	if j, dup := t.index[newName]; dup && j != i {
		return fmt.Errorf("table: duplicate column %q", newName)
	}
	delete(t.index, oldName)
	t.index[newName] = i
	t.cols[i].Name = newName
	return nil
}

// Project returns a new table containing only the named columns, preserving
// row identifiers.
func (t *Table) Project(names ...string) (*Table, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("table: Project with no columns")
	}
	schema := make(Schema, len(names))
	src := make([]int, len(names))
	for k, name := range names {
		i := t.ColIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("table: no column %q", name)
		}
		schema[k] = t.cols[i]
		src[k] = i
	}
	out, err := NewWithCapacity(schema, t.NumRows())
	if err != nil {
		return nil, err
	}
	out.pool = t.pool.Clone()
	for k, i := range src {
		if t.cols[i].Type == Float {
			out.floats[k] = append(out.floats[k], t.floats[i]...)
		} else {
			out.ints[k] = append(out.ints[k], t.ints[i]...)
		}
	}
	out.rowIDs = append(out.rowIDs[:0], t.rowIDs...)
	out.nextID = t.nextID
	return out, nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := &Table{
		cols:   append([]Column(nil), t.cols...),
		ints:   make([][]int64, len(t.cols)),
		floats: make([][]float64, len(t.cols)),
		rowIDs: append([]int64(nil), t.rowIDs...),
		nextID: t.nextID,
		pool:   t.pool.Clone(),
		index:  make(map[string]int, len(t.cols)),
	}
	for name, i := range t.index {
		out.index[name] = i
	}
	for i := range t.cols {
		if t.ints[i] != nil {
			out.ints[i] = append([]int64(nil), t.ints[i]...)
		}
		if t.floats[i] != nil {
			out.floats[i] = append([]float64(nil), t.floats[i]...)
		}
	}
	return out
}

// Bytes estimates the in-memory size of the table: column storage, row ids,
// and the string pool. This is the quantity reported as "In-memory Table
// Size" in Table 2 of the paper.
func (t *Table) Bytes() int64 {
	var b int64
	for i := range t.cols {
		b += int64(cap(t.ints[i])) * 8
		b += int64(cap(t.floats[i])) * 8
	}
	b += int64(cap(t.rowIDs)) * 8
	b += t.pool.Bytes()
	return b
}

// ColSumInt sums an Int column.
func (t *Table) ColSumInt(name string) (int64, error) {
	i := t.ColIndex(name)
	if i < 0 || t.cols[i].Type != Int {
		return 0, fmt.Errorf("table: no int column %q", name)
	}
	var s int64
	for _, v := range t.ints[i] {
		s += v
	}
	return s, nil
}

// ColMinMaxFloat returns the min and max of a numeric column.
func (t *Table) ColMinMaxFloat(name string) (min, max float64, err error) {
	vals, err := t.numericAsFloat(name)
	if err != nil {
		return 0, 0, err
	}
	if len(vals) == 0 {
		return 0, 0, fmt.Errorf("table: ColMinMaxFloat on empty table")
	}
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, nil
}

// freshLike returns an empty table with the same schema and a cloned pool,
// preserving nextID so new rows get unused identifiers.
func (t *Table) freshLike(capacity int) *Table {
	out, err := NewWithCapacity(t.Schema(), capacity)
	if err != nil {
		panic(err) // schema came from a valid table
	}
	out.pool = t.pool.Clone()
	out.nextID = t.nextID
	return out
}

// appendRowFrom copies row r of src (same schema layout) into t, preserving
// the row id.
func (t *Table) appendRowFrom(src *Table, r int) {
	for i := range t.cols {
		if t.cols[i].Type == Float {
			t.floats[i] = append(t.floats[i], src.floats[i][r])
		} else {
			t.ints[i] = append(t.ints[i], src.ints[i][r])
		}
	}
	t.rowIDs = append(t.rowIDs, src.rowIDs[r])
	if src.rowIDs[r] >= t.nextID {
		t.nextID = src.rowIDs[r] + 1
	}
}
