package table

import (
	"testing"
)

func mustTable(t *testing.T, schema Schema) *Table {
	t.Helper()
	tbl, err := New(schema)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func mustAppend(t *testing.T, tbl *Table, rows ...[]any) {
	t.Helper()
	for _, r := range rows {
		if err := tbl.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
}

// postsTable builds a small StackOverflow-like table used across tests,
// mirroring the paper's §4.1 demo schema.
func postsTable(t *testing.T) *Table {
	tbl := mustTable(t, Schema{
		{"PostId", Int}, {"UserId", Int}, {"Type", String}, {"Tag", String}, {"Score", Float},
	})
	mustAppend(t, tbl,
		[]any{1, 100, "question", "Java", 3.0},
		[]any{2, 200, "answer", "Java", 5.0},
		[]any{3, 300, "question", "Go", 1.0},
		[]any{4, 100, "answer", "Go", 2.5},
		[]any{5, 200, "question", "Java", 0.0},
		[]any{6, 400, "answer", "Java", 4.0},
	)
	return tbl
}

func TestNewRejectsBadSchemas(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := New(Schema{{"", Int}}); err == nil {
		t.Fatal("empty column name accepted")
	}
	if _, err := New(Schema{{"a", Int}, {"a", Float}}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := New(Schema{{"a", Type(99)}}); err == nil {
		t.Fatal("invalid type accepted")
	}
}

func TestAppendRowAndAccessors(t *testing.T) {
	tbl := postsTable(t)
	if tbl.NumRows() != 6 || tbl.NumCols() != 5 {
		t.Fatalf("dims = (%d,%d)", tbl.NumRows(), tbl.NumCols())
	}
	if got := tbl.IntAt(tbl.ColIndex("PostId"), 2); got != 3 {
		t.Fatalf("IntAt = %d", got)
	}
	if got := tbl.StrAt(tbl.ColIndex("Type"), 1); got != "answer" {
		t.Fatalf("StrAt = %q", got)
	}
	if got := tbl.FloatAt(tbl.ColIndex("Score"), 3); got != 2.5 {
		t.Fatalf("FloatAt = %v", got)
	}
	if got := tbl.Value(tbl.ColIndex("Tag"), 0); got != "Java" {
		t.Fatalf("Value = %v", got)
	}
}

func TestAppendRowTypeErrors(t *testing.T) {
	tbl := mustTable(t, Schema{{"a", Int}, {"b", String}})
	if err := tbl.AppendRow(1); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := tbl.AppendRow("x", "y"); err == nil {
		t.Fatal("string into int column accepted")
	}
	if err := tbl.AppendRow(1, 2); err == nil {
		t.Fatal("int into string column accepted")
	}
}

func TestRowIDsPersistentAndDense(t *testing.T) {
	tbl := postsTable(t)
	ids := tbl.RowIDs()
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("row %d has id %d", i, id)
		}
	}
}

func TestColIndexAndType(t *testing.T) {
	tbl := postsTable(t)
	if tbl.ColIndex("nope") != -1 {
		t.Fatal("found absent column")
	}
	typ, err := tbl.ColType("Score")
	if err != nil || typ != Float {
		t.Fatalf("ColType = (%v,%v)", typ, err)
	}
	if _, err := tbl.ColType("nope"); err == nil {
		t.Fatal("ColType missing column did not error")
	}
}

func TestProjectPreservesRowIDs(t *testing.T) {
	tbl := postsTable(t)
	p, err := tbl.Project("UserId", "Tag")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.NumRows() != tbl.NumRows() {
		t.Fatalf("dims = (%d,%d)", p.NumRows(), p.NumCols())
	}
	for i, id := range p.RowIDs() {
		if id != tbl.RowIDs()[i] {
			t.Fatal("Project changed row ids")
		}
	}
	if p.StrAt(1, 0) != "Java" {
		t.Fatalf("projected value = %q", p.StrAt(1, 0))
	}
	if _, err := tbl.Project("nope"); err == nil {
		t.Fatal("Project on missing column did not error")
	}
	if _, err := tbl.Project(); err == nil {
		t.Fatal("Project with no columns did not error")
	}
}

func TestRename(t *testing.T) {
	tbl := postsTable(t)
	if err := tbl.Rename("UserId", "User"); err != nil {
		t.Fatal(err)
	}
	if tbl.ColIndex("User") < 0 || tbl.ColIndex("UserId") >= 0 {
		t.Fatal("rename not applied")
	}
	if err := tbl.Rename("User", "Tag"); err == nil {
		t.Fatal("rename onto existing column accepted")
	}
	if err := tbl.Rename("nope", "x"); err == nil {
		t.Fatal("rename of missing column accepted")
	}
	// Renaming a column to itself is fine.
	if err := tbl.Rename("Tag", "Tag"); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tbl := postsTable(t)
	c := tbl.Clone()
	mustAppend(t, c, []any{7, 500, "answer", "Rust", 1.0})
	if tbl.NumRows() != 6 {
		t.Fatal("clone append mutated original")
	}
	if c.NumRows() != 7 {
		t.Fatalf("clone rows = %d", c.NumRows())
	}
	if c.StrAt(c.ColIndex("Tag"), 6) != "Rust" {
		t.Fatal("clone lost appended value")
	}
}

func TestAddColumns(t *testing.T) {
	tbl := postsTable(t)
	if err := tbl.AddIntColumn("Views", []int64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddFloatColumn("Rank", make([]float64, 6)); err != nil {
		t.Fatal(err)
	}
	if tbl.NumCols() != 7 {
		t.Fatalf("cols = %d", tbl.NumCols())
	}
	if err := tbl.AddIntColumn("Views", make([]int64, 6)); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := tbl.AddIntColumn("Short", make([]int64, 2)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestBytesGrows(t *testing.T) {
	tbl := mustTable(t, Schema{{"a", Int}, {"s", String}})
	empty := tbl.Bytes()
	for i := 0; i < 1000; i++ {
		mustAppend(t, tbl, []any{i, "some-string"})
	}
	if tbl.Bytes() <= empty {
		t.Fatal("Bytes did not grow")
	}
}

func TestColAggregatesHelpers(t *testing.T) {
	tbl := postsTable(t)
	sum, err := tbl.ColSumInt("UserId")
	if err != nil {
		t.Fatal(err)
	}
	if sum != 100+200+300+100+200+400 {
		t.Fatalf("ColSumInt = %d", sum)
	}
	min, max, err := tbl.ColMinMaxFloat("Score")
	if err != nil {
		t.Fatal(err)
	}
	if min != 0.0 || max != 5.0 {
		t.Fatalf("min/max = %v/%v", min, max)
	}
	if _, _, err := mustTable(t, Schema{{"a", Int}}).ColMinMaxFloat("a"); err == nil {
		t.Fatal("min/max of empty table did not error")
	}
	if _, err := tbl.ColSumInt("Tag"); err == nil {
		t.Fatal("ColSumInt on string column accepted")
	}
}

func TestIntColFloatColAccessors(t *testing.T) {
	tbl := postsTable(t)
	if _, err := tbl.IntCol("Score"); err == nil {
		t.Fatal("IntCol on float column accepted")
	}
	col, err := tbl.IntCol("UserId")
	if err != nil || len(col) != 6 {
		t.Fatalf("IntCol = (%d,%v)", len(col), err)
	}
	fcol, err := tbl.FloatCol("Score")
	if err != nil || len(fcol) != 6 {
		t.Fatalf("FloatCol = (%d,%v)", len(fcol), err)
	}
	if _, err := tbl.FloatCol("UserId"); err == nil {
		t.Fatal("FloatCol on int column accepted")
	}
}

func TestHead(t *testing.T) {
	tbl := postsTable(t)
	h := tbl.Head(2)
	if h.NumRows() != 2 {
		t.Fatalf("Head rows = %d", h.NumRows())
	}
	if h.RowIDs()[1] != tbl.RowIDs()[1] {
		t.Fatal("Head changed row ids")
	}
	if tbl.Head(100).NumRows() != 6 {
		t.Fatal("Head beyond length wrong")
	}
}
