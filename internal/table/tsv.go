package table

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadTSV reads tab-separated rows from r into a new table with the given
// schema. If header is true the first line is skipped (column names come
// from the schema, as in ringo.LoadTableTSV(schema, file)). Lines beginning
// with '#' and blank lines are ignored, matching SNAP's edge-list format.
// String fields are unescaped (see unescapeTSV), reversing SaveTSV's
// escaping of tabs, newlines and backslashes.
func LoadTSV(r io.Reader, schema Schema, header bool) (*Table, error) {
	t, err := New(schema)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	first := true
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if first && header {
			first = false
			continue
		}
		first = false
		if err := t.appendTSVLine(line, lineNo); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("table: reading TSV: %w", err)
	}
	return t, nil
}

func (t *Table) appendTSVLine(line string, lineNo int) error {
	for i := range t.cols {
		var field string
		if i < len(t.cols)-1 {
			tab := strings.IndexByte(line, '\t')
			if tab < 0 {
				return fmt.Errorf("table: line %d: %d fields for %d columns", lineNo, i+1, len(t.cols))
			}
			field, line = line[:tab], line[tab+1:]
		} else {
			if tab := strings.IndexByte(line, '\t'); tab >= 0 {
				field = line[:tab]
			} else {
				field = line
			}
		}
		switch t.cols[i].Type {
		case Int:
			n, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
			if err != nil {
				return fmt.Errorf("table: line %d column %q: %w", lineNo, t.cols[i].Name, err)
			}
			t.ints[i] = append(t.ints[i], n)
		case Float:
			f, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return fmt.Errorf("table: line %d column %q: %w", lineNo, t.cols[i].Name, err)
			}
			t.floats[i] = append(t.floats[i], f)
		default:
			t.ints[i] = append(t.ints[i], int64(t.pool.Intern(unescapeTSV(field))))
		}
	}
	t.rowIDs = append(t.rowIDs, t.nextID)
	t.nextID++
	return nil
}

// LoadTSVFile is LoadTSV reading from the named file.
func LoadTSVFile(path string, schema Schema, header bool) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadTSV(f, schema, header)
}

// escapeTSV renders a string cell so it survives the line/field structure
// of TSV: backslash, tab, newline and carriage return become the two-byte
// sequences \\, \t, \n, \r (the Postgres COPY convention). Values without
// those bytes are returned unchanged, no allocation.
func escapeTSV(s string) string {
	if !strings.ContainsAny(s, "\\\t\n\r") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 2)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\t':
			b.WriteString(`\t`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// unescapeTSV reverses escapeTSV. Unrecognized escapes keep the escaped
// byte literally, and a lone trailing backslash survives — but the four
// recognized sequences (\t \n \r \\) ARE reinterpreted, so a pre-escaping
// file whose string cells contain those literal two-byte sequences decodes
// differently than it used to (e.g. "C:\temp" loads with a tab). That is
// the inherent cost of adopting an escape syntax; datasets that must keep
// backslash sequences byte-exact should use the binary formats.
func unescapeTSV(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i == len(s)-1 {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// SaveTSV writes the table as tab-separated values. If header is true the
// first line lists the column names.
//
// String cells are escaped (see escapeTSV), so values containing tabs,
// newlines or backslashes round-trip through LoadTSV, as do empty cells in
// multi-column tables. Two ambiguities remain inherent to the line format
// and are NOT escaped: a single-string-column row whose value is empty
// renders as a blank line, and a first cell starting with '#' renders as a
// comment line — LoadTSV skips both. The binary formats (EncodeBinary,
// workspace snapshots) have no such ambiguity and round-trip every value
// byte-for-byte.
func (t *Table) SaveTSV(w io.Writer, header bool) error {
	bw := bufio.NewWriter(w)
	if header {
		for i, c := range t.cols {
			if i > 0 {
				if err := bw.WriteByte('\t'); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(c.Name); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	var buf []byte
	for row := 0; row < t.NumRows(); row++ {
		buf = buf[:0]
		for i := range t.cols {
			if i > 0 {
				buf = append(buf, '\t')
			}
			switch t.cols[i].Type {
			case Int:
				buf = strconv.AppendInt(buf, t.ints[i][row], 10)
			case Float:
				buf = strconv.AppendFloat(buf, t.floats[i][row], 'g', -1, 64)
			default:
				buf = append(buf, escapeTSV(t.pool.Get(int32(t.ints[i][row])))...)
			}
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveTSVFile is SaveTSV writing to the named file.
func (t *Table) SaveTSVFile(path string, header bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.SaveTSV(f, header); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
