package table

import (
	"bytes"
	"strings"
	"testing"
)

// TestTSVStringRoundTrip locks down the escaping behavior documented on
// SaveTSV: tabs, newlines, carriage returns, backslashes and empty strings
// inside multi-column rows all survive a save/load cycle.
func TestTSVStringRoundTrip(t *testing.T) {
	schema := Schema{
		{Name: "Name", Type: String},
		{Name: "Note", Type: String},
		{Name: "N", Type: Int},
	}
	tbl, err := New(schema)
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		name, note string
		n          int64
	}{
		{"plain", "nothing special", 1},
		{"tab\tinside", "two\ttabs\there", 2},
		{"new\nline", "trailing newline\n", 3},
		{"carriage\rreturn", "\rleading", 4},
		{"back\\slash", "\\t is not a tab", 5},
		{"", "empty first cell", 6},
		{"empty note next", "", 7},
		{"mixed \\ \t \n", "\t\n\\", 8},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.name, r.note, r.n); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := tbl.SaveTSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	// The wire form must be one header plus one line per row: no raw
	// newline may leak out of a cell.
	if gotLines := strings.Count(buf.String(), "\n"); gotLines != len(rows)+1 {
		t.Fatalf("wire form has %d lines, want %d:\n%s", gotLines, len(rows)+1, buf.String())
	}

	back, err := LoadTSV(&buf, schema, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != len(rows) {
		t.Fatalf("round trip rows = %d, want %d", back.NumRows(), len(rows))
	}
	for i, r := range rows {
		if got := back.Value(0, i); got != r.name {
			t.Errorf("row %d Name = %q, want %q", i, got, r.name)
		}
		if got := back.Value(1, i); got != r.note {
			t.Errorf("row %d Note = %q, want %q", i, got, r.note)
		}
		if got := back.Value(2, i); got != r.n {
			t.Errorf("row %d N = %v, want %d", i, got, r.n)
		}
	}
}

// TestTSVLegacyUnescapedInput: for files written before escaping existed
// (or by other tools), bytes that do not form a recognized escape load
// unchanged, including a trailing backslash. (Recognized sequences like a
// literal "\t" ARE reinterpreted — the documented cost of the syntax.)
func TestTSVLegacyUnescapedInput(t *testing.T) {
	in := "a\tplain value\nb\tpath\\\n"
	tbl, err := LoadTSV(strings.NewReader(in), Schema{
		{Name: "K", Type: String},
		{Name: "V", Type: String},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Value(1, 0); got != "plain value" {
		t.Fatalf("plain value = %q", got)
	}
	if got := tbl.Value(1, 1); got != "path\\" {
		t.Fatalf("trailing backslash = %q", got)
	}
	// An unknown escape keeps the escaped byte.
	if unescapeTSV(`\x`) != "x" {
		t.Fatalf("unknown escape = %q", unescapeTSV(`\x`))
	}
}

// TestTSVDocumentedAmbiguities pins the two cases SaveTSV documents as
// lossy, so a future fix (or regression) shows up here.
func TestTSVDocumentedAmbiguities(t *testing.T) {
	schema := Schema{{Name: "S", Type: String}}
	tbl, err := New(schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"", "#comment-like", "kept"} {
		if err := tbl.AppendRow(v); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tbl.SaveTSV(&buf, false); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTSV(&buf, schema, false)
	if err != nil {
		t.Fatal(err)
	}
	// The blank line and the '#' line are skipped on load, by design.
	if back.NumRows() != 1 || back.Value(0, 0) != "kept" {
		t.Fatalf("ambiguous rows = %d (%v); the documented behavior changed", back.NumRows(), back.Value(0, 0))
	}
}
