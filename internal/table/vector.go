package table

import (
	"ringo/internal/bitmap"
	"ringo/internal/par"
)

// This file is the column-at-a-time predicate backend: each leaf scans its
// entire typed column into a selection bitmap with a tight monomorphic loop
// (one comparison per row, no per-row function calls), and the boolean
// connectives combine whole 64-row words. String ordering comparisons are
// evaluated once per distinct interned value, then broadcast over the id
// column, so the per-row cost of every leaf is integer-compare speed.

// evalNode evaluates a predicate tree into a fresh selection bitmap of
// NumRows bits.
func (t *Table) evalNode(n *predNode) *bitmap.Bitmap {
	switch n.kind {
	case predLeaf:
		return t.leafBitmap(n.leaf)
	case predNot:
		bm := t.evalNode(n.left)
		bm.Not()
		return bm
	case predAnd:
		bm := t.evalNode(n.left)
		bm.And(t.evalNode(n.right))
		return bm
	default: // predOr
		if col, consts, ok := orEqChain(n); ok {
			// IN-list fusion: "c = a or c = b or ..." over one column is a
			// single membership scan, not one column scan per term.
			bm := bitmap.New(t.NumRows())
			fillInSet(bm, t.ints[col], consts)
			return bm
		}
		bm := t.evalNode(n.left)
		bm.Or(t.evalNode(n.right))
		return bm
	}
}

// orEqChain reports whether n is an OR-chain whose leaves are all
// equalities on one Int or String column, returning that column and the
// constants (values for Int, interned ids for String). Leaves whose string
// constant was never interned match nothing and contribute no constant.
// Chains of fewer than two comparable leaves don't fuse.
func orEqChain(n *predNode) (col int, consts []int64, ok bool) {
	col = -1
	var leaves int
	var walk func(n *predNode) bool
	walk = func(n *predNode) bool {
		switch n.kind {
		case predOr:
			return walk(n.left) && walk(n.right)
		case predLeaf:
			l := n.leaf
			if l.op != EQ || l.typ == Float {
				return false
			}
			if col == -1 {
				col = l.col
			} else if col != l.col {
				return false
			}
			leaves++
			if !l.missing {
				consts = append(consts, l.ic)
			}
			return true
		default:
			return false
		}
	}
	if !walk(n) || leaves < 2 {
		return -1, nil, false
	}
	return col, consts, true
}

// fillInSet sets bm's bits where the column's value equals any constant —
// the fused execution of an OR-of-equalities chain: the column is streamed
// once however many terms the chain has. When the constants span a small
// range (always true for interned string ids) membership is one table
// lookup per row; otherwise each row compares against the list in
// registers, which still beats one full column scan per term.
func fillInSet(bm *bitmap.Bitmap, data []int64, consts []int64) {
	if len(consts) == 0 {
		return
	}
	words := bm.Words()
	n := len(data)
	lo, hi := consts[0], consts[0]
	for _, c := range consts[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	const maxSpan = 1 << 20
	if span := hi - lo + 1; span > 0 && span <= maxSpan {
		accept := make([]bool, span)
		for _, c := range consts {
			accept[c-lo] = true
		}
		bm.ParFill(func(wlo, whi int) {
			for w := wlo; w < whi; w++ {
				base := w << 6
				var word uint64
				for j, v := range data[base:min(base+bitmap.WordBits, n)] {
					if v >= lo && v <= hi && accept[v-lo] {
						word |= 1 << uint(j)
					}
				}
				words[w] = word
			}
		})
		return
	}
	bm.ParFill(func(wlo, whi int) {
		for w := wlo; w < whi; w++ {
			base := w << 6
			var word uint64
			for j, v := range data[base:min(base+bitmap.WordBits, n)] {
				for _, c := range consts {
					if v == c {
						word |= 1 << uint(j)
						break
					}
				}
			}
			words[w] = word
		}
	})
}

// leafBitmap evaluates one resolved comparison over its whole column.
func (t *Table) leafBitmap(l leafPred) *bitmap.Bitmap {
	bm := bitmap.New(t.NumRows())
	switch l.typ {
	case Int:
		fillCmpInt(bm, t.ints[l.col], l.ic, l.op)
	case Float:
		fillCmpFloat(bm, t.floats[l.col], l.fc, l.op)
	default:
		if l.op == EQ || l.op == NE {
			if l.missing {
				if l.op == NE {
					bm.SetAll()
				}
				return bm
			}
			fillCmpInt(bm, t.ints[l.col], l.ic, l.op)
			return bm
		}
		// Ordering over strings: decide each distinct pool id once, then
		// the column scan is a table lookup per row.
		accept := make([]bool, t.pool.Len())
		par.ForEach(len(accept), func(id int) {
			accept[id] = cmpString(t.pool.Get(int32(id)), l.sc, l.op)
		})
		fillAccept(bm, t.ints[l.col], accept)
	}
	return bm
}

// fillCmpInt sets bm's bits where the int column compares true against c.
func fillCmpInt(bm *bitmap.Bitmap, data []int64, c int64, op CmpOp) {
	fillCmp(bm, data, c, op)
}

// fillCmpFloat is fillCmpInt over a float column. NaN comparison semantics
// follow Go's (all comparisons false except NE), matching the closure path.
func fillCmpFloat(bm *bitmap.Bitmap, data []float64, c float64, op CmpOp) {
	fillCmp(bm, data, c, op)
}

// fillCmp fills word-aligned 64-row chunks in parallel. The operator switch
// sits outside the row loops so each instantiation's loop body is a single
// predictable comparison; ranging over the word's subslice lets the compiler
// drop the per-element bounds checks.
func fillCmp[T int64 | float64](bm *bitmap.Bitmap, data []T, c T, op CmpOp) {
	words := bm.Words()
	n := len(data)
	bm.ParFill(func(wlo, whi int) {
		switch op {
		case EQ:
			for w := wlo; w < whi; w++ {
				base := w << 6
				var word uint64
				for j, v := range data[base:min(base+bitmap.WordBits, n)] {
					if v == c {
						word |= 1 << uint(j)
					}
				}
				words[w] = word
			}
		case NE:
			for w := wlo; w < whi; w++ {
				base := w << 6
				var word uint64
				for j, v := range data[base:min(base+bitmap.WordBits, n)] {
					if v != c {
						word |= 1 << uint(j)
					}
				}
				words[w] = word
			}
		case LT:
			for w := wlo; w < whi; w++ {
				base := w << 6
				var word uint64
				for j, v := range data[base:min(base+bitmap.WordBits, n)] {
					if v < c {
						word |= 1 << uint(j)
					}
				}
				words[w] = word
			}
		case LE:
			for w := wlo; w < whi; w++ {
				base := w << 6
				var word uint64
				for j, v := range data[base:min(base+bitmap.WordBits, n)] {
					if v <= c {
						word |= 1 << uint(j)
					}
				}
				words[w] = word
			}
		case GT:
			for w := wlo; w < whi; w++ {
				base := w << 6
				var word uint64
				for j, v := range data[base:min(base+bitmap.WordBits, n)] {
					if v > c {
						word |= 1 << uint(j)
					}
				}
				words[w] = word
			}
		default: // GE
			for w := wlo; w < whi; w++ {
				base := w << 6
				var word uint64
				for j, v := range data[base:min(base+bitmap.WordBits, n)] {
					if v >= c {
						word |= 1 << uint(j)
					}
				}
				words[w] = word
			}
		}
	})
}

// fillAccept sets bm's bits where the row's interned id is accepted — the
// broadcast step of string ordering comparisons.
func fillAccept(bm *bitmap.Bitmap, data []int64, accept []bool) {
	words := bm.Words()
	n := len(data)
	bm.ParFill(func(wlo, whi int) {
		for w := wlo; w < whi; w++ {
			base := w << 6
			var word uint64
			for j, v := range data[base:min(base+bitmap.WordBits, n)] {
				if accept[v] {
					word |= 1 << uint(j)
				}
			}
			words[w] = word
		}
	})
}
