package table

import (
	"fmt"
	"math/rand"
	"testing"
)

// The vectorized bitmap backend (vector.go) and the per-row closure path
// (CompileExpr + SelectFunc) must be observationally identical: same rows,
// same order, same row ids, for any expression either accepts. These tests
// drive that equivalence with randomized tables and expression trees; the
// closure path is the oracle.

// equivTable builds a table whose columns exercise every leaf kind: small-
// range ints (negative values included), wider ints, fractional floats, and
// strings from a small vocabulary so equality, ordering and never-interned
// constants all occur.
func equivTable(tb testing.TB, rows int, rng *rand.Rand) *Table {
	tb.Helper()
	tbl := MustNew(Schema{{"a", Int}, {"b", Int}, {"f", Float}, {"s", String}})
	words := []string{"go", "java", "sql", "ml", "rust", "c"}
	for i := 0; i < rows; i++ {
		if err := tbl.AppendRow(
			int64(rng.Intn(8)-2),
			int64(rng.Intn(100)),
			float64(rng.Intn(40))/4,
			words[rng.Intn(len(words))],
		); err != nil {
			tb.Fatal(err)
		}
	}
	return tbl
}

var equivOps = []string{"=", "!=", "<", "<=", ">", ">="}

// equivExpr generates a random predicate over equivTable's columns. Depth
// bounds the tree; OR-of-equality chains on one column are generated
// explicitly so the fused membership-scan path is exercised, including
// chains with never-interned string constants.
func equivExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("a %s %d", equivOps[rng.Intn(len(equivOps))], rng.Intn(10)-4)
		case 1:
			return fmt.Sprintf("b %s %d", equivOps[rng.Intn(len(equivOps))], rng.Intn(120)-10)
		case 2:
			return fmt.Sprintf("f %s %.2f", equivOps[rng.Intn(len(equivOps))], float64(rng.Intn(48)-4)/4)
		default:
			words := []string{"go", "java", "sql", "ml", "rust", "c", "haskell", "zz"}
			return fmt.Sprintf("s %s %s", equivOps[rng.Intn(len(equivOps))], words[rng.Intn(len(words))])
		}
	}
	switch rng.Intn(4) {
	case 0:
		return "not (" + equivExpr(rng, depth-1) + ")"
	case 1:
		return "(" + equivExpr(rng, depth-1) + ") and (" + equivExpr(rng, depth-1) + ")"
	case 2:
		return "(" + equivExpr(rng, depth-1) + ") or (" + equivExpr(rng, depth-1) + ")"
	default:
		// An IN-list: 2-4 equalities on one column, the fusion trigger.
		if rng.Intn(2) == 0 {
			words := []string{"go", "java", "sql", "ml", "rust", "haskell"}
			expr := "s = " + words[rng.Intn(len(words))]
			for n := rng.Intn(3) + 1; n > 0; n-- {
				expr += " or s = " + words[rng.Intn(len(words))]
			}
			return expr
		}
		expr := fmt.Sprintf("a = %d", rng.Intn(10)-4)
		for n := rng.Intn(3) + 1; n > 0; n-- {
			expr += fmt.Sprintf(" or a = %d", rng.Intn(10)-4)
		}
		return expr
	}
}

// sameSelection fails unless got and want selected exactly the same rows in
// the same order, checked by persistent row id and by cell values.
func sameSelection(t *testing.T, got, want *Table, ctx string) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("%s: %d rows vs %d", ctx, got.NumRows(), want.NumRows())
	}
	gids, wids := got.RowIDs(), want.RowIDs()
	for i := range gids {
		if gids[i] != wids[i] {
			t.Fatalf("%s: row id[%d] = %d, want %d", ctx, i, gids[i], wids[i])
		}
	}
	ga, _ := got.IntCol("a")
	wa, _ := want.IntCol("a")
	for i := range ga {
		if ga[i] != wa[i] {
			t.Fatalf("%s: a[%d] = %d, want %d", ctx, i, ga[i], wa[i])
		}
	}
}

func TestVectorizedMatchesClosureRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		tbl := equivTable(t, 100+rng.Intn(2000), rng)
		expr := equivExpr(rng, 3)
		pred, cerr := tbl.CompileExpr(expr)
		vec, verr := tbl.SelectExpr(expr)
		if (cerr == nil) != (verr == nil) {
			t.Fatalf("paths disagree on acceptance of %q: closure=%v vectorized=%v", expr, cerr, verr)
		}
		if cerr != nil {
			continue
		}
		sameSelection(t, vec, tbl.SelectFunc(pred), fmt.Sprintf("expr %q", expr))
	}
}

// TestOrEqFusionMatchesClosure pins the IN-list fusion cases by hand:
// chains that fuse, chains that must not (mixed columns, mixed operators,
// floats), and chains where some or all constants were never interned.
func TestOrEqFusionMatchesClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := equivTable(t, 4000, rng)
	for _, expr := range []string{
		"a = 1 or a = 3",
		"a = 1 or a = 3 or a = -2 or a = 7",
		"s = go or s = sql",
		"s = go or s = haskell",          // one constant never interned
		"s = haskell or s = zz",          // all constants never interned
		"a = 1 or b = 1",                 // mixed columns: no fusion
		"a = 1 or a != 3",                // mixed operators: no fusion
		"f = 1.25 or f = 2.5",            // floats: no fusion
		"a = 1 or a = 3 or s = go",       // mixed columns across the chain
		"(a = 1 or a = 3) and s != java", // fused chain under a connective
		"not (s = go or s = java or s = c)",
		"a = 1 or a = 1 or a = 1",     // duplicate constants
		"a = 1000000 or a = -1000000", // wide span: list-compare fallback
	} {
		pred, err := tbl.CompileExpr(expr)
		if err != nil {
			t.Fatalf("compile %q: %v", expr, err)
		}
		vec, err := tbl.SelectExpr(expr)
		if err != nil {
			t.Fatalf("vectorized %q: %v", expr, err)
		}
		sameSelection(t, vec, tbl.SelectFunc(pred), fmt.Sprintf("expr %q", expr))
	}
}

// TestSelectInPlaceMatchesSelect builds the same table twice and checks the
// in-place variants keep exactly the rows their copying counterparts select.
func TestSelectInPlaceMatchesSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 20; iter++ {
		seed := rng.Int63()
		mk := func() *Table { return equivTable(t, 1500, rand.New(rand.NewSource(seed))) }
		expr := equivExpr(rand.New(rand.NewSource(seed+1)), 2)

		a, b := mk(), mk()
		out, err := a.SelectExpr(expr)
		if err != nil {
			continue // both paths reject identically; covered above
		}
		if _, err := b.SelectExprInPlace(expr); err != nil {
			t.Fatalf("in-place rejected %q the copying path accepted: %v", expr, err)
		}
		sameSelection(t, b, out, fmt.Sprintf("in-place expr %q", expr))

		c, d := mk(), mk()
		outc, err := c.Select("a", GE, int64(2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.SelectInPlace("a", GE, int64(2)); err != nil {
			t.Fatal(err)
		}
		sameSelection(t, d, outc, "in-place a >= 2")
	}
}

// TestSelectInPlaceKeepsPoolIdentity is the regression for the aliasing
// contract documented on SelectInPlace: the in-place variants compact the
// receiver's own storage, so a string pool pointer taken before the filter
// must remain the table's pool after it — callers interning through a
// retained pool must observe those ids in the table.
func TestSelectInPlaceKeepsPoolIdentity(t *testing.T) {
	tbl := postsTable(t)
	pool := tbl.Pool()
	if _, err := tbl.SelectExprInPlace("Tag = Java"); err != nil {
		t.Fatal(err)
	}
	if tbl.Pool() != pool {
		t.Fatal("SelectExprInPlace replaced the table's string pool")
	}
	if _, err := tbl.SelectInPlace("Type", EQ, "question"); err != nil {
		t.Fatal(err)
	}
	if tbl.Pool() != pool {
		t.Fatal("SelectInPlace replaced the table's string pool")
	}
	// The surviving table still round-trips through the retained pool.
	if err := tbl.AppendRow(int64(900), int64(900), "question", "Java", 1.0); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Select("Tag", EQ, "Java")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tbl.NumRows() {
		t.Fatalf("post-filter append not visible through pool: %d of %d rows", got.NumRows(), tbl.NumRows())
	}
}

// benchTable is the shared fixture for the selection benchmarks: ~1% of
// rows match k = 7, the regime where the scan cost dominates the gather.
func benchTable(b *testing.B, rows int) *Table {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	tbl := MustNew(Schema{{"k", Int}, {"s", String}})
	words := []string{"go", "java", "sql", "ml"}
	for i := 0; i < rows; i++ {
		if err := tbl.AppendRow(int64(rng.Intn(128)), words[rng.Intn(len(words))]); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

const benchRows = 1 << 17

// BenchmarkSelectRow is the per-row closure path over the bench fixture.
func BenchmarkSelectRow(b *testing.B) {
	tbl := benchTable(b, benchRows)
	pred, err := tbl.CompileExpr("k = 7")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.SelectFunc(pred)
	}
}

// BenchmarkSelectVec is the same predicate through the column-at-a-time
// bitmap backend.
func BenchmarkSelectVec(b *testing.B) {
	tbl := benchTable(b, benchRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.SelectExpr("k = 7"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectIndexed is the warm equality-index path: lookup a stored
// bitmap and gather, no scan.
func BenchmarkSelectIndexed(b *testing.B) {
	tbl := benchTable(b, benchRows)
	idx, err := BuildEqIndex(tbl, "k", 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm, ok := idx.Lookup(tbl, EQ, int64(7))
		if !ok {
			b.Fatal("index not servable")
		}
		if _, err := tbl.SelectBitmap(bm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupBy guards the single-column group-by fast path.
func BenchmarkGroupBy(b *testing.B) {
	tbl := benchTable(b, benchRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tbl.Group("k"); err != nil {
			b.Fatal(err)
		}
	}
}
