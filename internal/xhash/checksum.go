package xhash

// Checksum support for the snapshot subsystem: a streaming 64-bit FNV-1a
// hash finished with the same splitmix64 avalanche this package uses for
// key mixing. FNV-1a alone propagates trailing-zero blocks weakly; the
// finalizer scrambles the state so that single-bit corruption anywhere in
// an object payload flips roughly half the checksum bits. This is an
// integrity check against truncation and bit rot, not a cryptographic MAC.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Digest is a streaming 64-bit checksum. The zero value is NOT ready to
// use; construct with NewDigest. Digest implements io.Writer so encoders
// can tee payload bytes through it.
type Digest struct {
	h uint64
	n uint64
}

// NewDigest returns a fresh checksum accumulator.
func NewDigest() *Digest {
	return &Digest{h: fnvOffset}
}

// Write absorbs p into the checksum. It never fails.
func (d *Digest) Write(p []byte) (int, error) {
	h := d.h
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime
	}
	d.h = h
	d.n += uint64(len(p))
	return len(p), nil
}

// Sum64 returns the checksum of the bytes written so far. The byte count is
// folded in before finalizing, so payloads that differ only by a run of
// trailing zero bytes hash differently.
func (d *Digest) Sum64() uint64 {
	return uint64(mix(int64(d.h ^ d.n)))
}

// Checksum64 returns the checksum of data in one call.
func Checksum64(data []byte) uint64 {
	d := NewDigest()
	_, _ = d.Write(data)
	return d.Sum64()
}
