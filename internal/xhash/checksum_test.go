package xhash

import (
	"bytes"
	"testing"
)

func TestChecksumDeterministicAndSensitive(t *testing.T) {
	data := []byte("ringo snapshot payload")
	c1 := Checksum64(data)
	c2 := Checksum64(data)
	if c1 != c2 {
		t.Fatalf("checksum not deterministic: %x vs %x", c1, c2)
	}
	for i := range data {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 1
		if Checksum64(mutated) == c1 {
			t.Fatalf("bit flip at byte %d not detected", i)
		}
	}
}

func TestChecksumLengthSensitive(t *testing.T) {
	// Payloads differing only in trailing zero bytes must hash apart.
	a := bytes.Repeat([]byte{0}, 8)
	b := bytes.Repeat([]byte{0}, 16)
	if Checksum64(a) == Checksum64(b) {
		t.Fatal("trailing zeros not distinguished")
	}
	if Checksum64(nil) == Checksum64([]byte{0}) {
		t.Fatal("empty vs single zero byte not distinguished")
	}
}

func TestChecksumStreamingMatchesOneShot(t *testing.T) {
	data := []byte("split across several writes")
	d := NewDigest()
	for i := 0; i < len(data); i += 5 {
		end := i + 5
		if end > len(data) {
			end = len(data)
		}
		if _, err := d.Write(data[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if d.Sum64() != Checksum64(data) {
		t.Fatalf("streaming %x != one-shot %x", d.Sum64(), Checksum64(data))
	}
}
