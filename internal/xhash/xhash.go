// Package xhash implements the thread-safe building blocks from §2.5 of the
// Ringo paper: an open-addressing concurrent hash table with linear probing
// and a concurrent vector whose insertions claim cells with an atomic
// increment. Both are fixed-capacity: Ringo computes exact sizes (node
// counts, degrees) before building, so "there is no need to estimate the
// size of the hash table or neighbor vectors in advance".
package xhash

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
)

// EmptyKey is the reserved key sentinel marking an unoccupied slot. Keys
// equal to EmptyKey must not be inserted.
const EmptyKey = math.MinInt64

// reservedVal marks a slot whose key has been claimed but whose value write
// has not yet been observed; Get spins past it. Values equal to reservedVal
// must not be stored.
const reservedVal = math.MinInt64

// Map is a fixed-capacity concurrent hash table from int64 keys to int64
// values using open addressing with linear probing. All methods are safe for
// concurrent use. The table does not grow; NewMap sizes it for the expected
// number of keys at a load factor of at most 1/2.
type Map struct {
	keys []int64
	vals []int64
	mask uint64
	n    atomic.Int64
}

// NewMap returns a Map sized to hold at least capacity keys.
func NewMap(capacity int) *Map {
	if capacity < 1 {
		capacity = 1
	}
	size := 4
	for size < 2*capacity {
		size <<= 1
	}
	m := &Map{
		keys: make([]int64, size),
		vals: make([]int64, size),
		mask: uint64(size - 1),
	}
	for i := range m.keys {
		m.keys[i] = EmptyKey
		m.vals[i] = reservedVal
	}
	return m
}

// mix is the splitmix64 finalizer, scrambling keys so that consecutive ids
// (the common case for node identifiers) spread across the table.
func mix(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len reports the number of keys in the map.
func (m *Map) Len() int { return int(m.n.Load()) }

// Cap reports the maximum number of keys the map can hold before Put panics
// (half the slot count, preserving the probe-length guarantee).
func (m *Map) Cap() int { return len(m.keys) / 2 }

// Get returns the value stored for k.
func (m *Map) Get(k int64) (v int64, ok bool) {
	if k == EmptyKey {
		return 0, false
	}
	i := mix(k) & m.mask
	for {
		kk := atomic.LoadInt64(&m.keys[i])
		if kk == EmptyKey {
			return 0, false
		}
		if kk == k {
			return m.waitVal(i), true
		}
		i = (i + 1) & m.mask
	}
}

// waitVal loads the value at slot i, spinning until the writer that claimed
// the slot has published it.
func (m *Map) waitVal(i uint64) int64 {
	for spins := 0; ; spins++ {
		v := atomic.LoadInt64(&m.vals[i])
		if v != reservedVal {
			return v
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// PutIfAbsent stores v under k unless k is already present. It returns the
// value now associated with k and whether this call inserted it. This is the
// primitive used to assign dense node indices during graph construction: the
// losing goroutine adopts the winner's index.
func (m *Map) PutIfAbsent(k, v int64) (actual int64, inserted bool) {
	m.checkOperands(k, v)
	i := mix(k) & m.mask
	for probes := 0; ; probes++ {
		kk := atomic.LoadInt64(&m.keys[i])
		if kk == EmptyKey {
			if atomic.CompareAndSwapInt64(&m.keys[i], EmptyKey, k) {
				atomic.StoreInt64(&m.vals[i], v)
				if n := m.n.Add(1); int(n) > m.Cap() {
					panic("xhash: Map over capacity")
				}
				return v, true
			}
			kk = atomic.LoadInt64(&m.keys[i])
		}
		if kk == k {
			return m.waitVal(i), false
		}
		i = (i + 1) & m.mask
		if probes > len(m.keys) {
			panic("xhash: Map probe loop; table full")
		}
	}
}

// Put stores v under k, overwriting any existing value.
func (m *Map) Put(k, v int64) {
	m.checkOperands(k, v)
	i := mix(k) & m.mask
	for probes := 0; ; probes++ {
		kk := atomic.LoadInt64(&m.keys[i])
		if kk == EmptyKey {
			if atomic.CompareAndSwapInt64(&m.keys[i], EmptyKey, k) {
				atomic.StoreInt64(&m.vals[i], v)
				if n := m.n.Add(1); int(n) > m.Cap() {
					panic("xhash: Map over capacity")
				}
				return
			}
			kk = atomic.LoadInt64(&m.keys[i])
		}
		if kk == k {
			atomic.StoreInt64(&m.vals[i], v)
			return
		}
		i = (i + 1) & m.mask
		if probes > len(m.keys) {
			panic("xhash: Map probe loop; table full")
		}
	}
}

// Add atomically adds delta to the value stored under k, inserting
// base+delta if k is absent. It returns the new value. Used for concurrent
// degree counting.
func (m *Map) Add(k, delta, base int64) int64 {
	m.checkOperands(k, base)
	i := mix(k) & m.mask
	for probes := 0; ; probes++ {
		kk := atomic.LoadInt64(&m.keys[i])
		if kk == EmptyKey {
			if atomic.CompareAndSwapInt64(&m.keys[i], EmptyKey, k) {
				atomic.StoreInt64(&m.vals[i], base+delta)
				if n := m.n.Add(1); int(n) > m.Cap() {
					panic("xhash: Map over capacity")
				}
				return base + delta
			}
			kk = atomic.LoadInt64(&m.keys[i])
		}
		if kk == k {
			m.waitVal(i)
			return atomic.AddInt64(&m.vals[i], delta)
		}
		i = (i + 1) & m.mask
		if probes > len(m.keys) {
			panic("xhash: Map probe loop; table full")
		}
	}
}

// Range calls fn for every key/value pair until fn returns false. It must
// not run concurrently with writers.
func (m *Map) Range(fn func(k, v int64) bool) {
	for i, k := range m.keys {
		if k == EmptyKey {
			continue
		}
		if !fn(k, m.vals[i]) {
			return
		}
	}
}

func (m *Map) checkOperands(k, v int64) {
	if k == EmptyKey {
		panic(fmt.Sprintf("xhash: key %d is the reserved empty sentinel", k))
	}
	if v == reservedVal {
		panic(fmt.Sprintf("xhash: value %d is the reserved pending sentinel", v))
	}
}

// Vec is a fixed-capacity concurrent vector. Append claims the next cell
// with an atomic increment (§2.5) and then writes it; cells are therefore
// written exactly once with no locking and no contention beyond the counter.
// Reads of the collected data must happen after all appends complete (e.g.
// after a WaitGroup barrier), matching the construction pattern in the
// paper.
type Vec struct {
	data []int64
	n    atomic.Int64
}

// NewVec returns a Vec with the given fixed capacity.
func NewVec(capacity int) *Vec {
	return &Vec{data: make([]int64, capacity)}
}

// Append stores x in the next free cell and returns its index.
func (v *Vec) Append(x int64) int {
	i := v.n.Add(1) - 1
	if int(i) >= len(v.data) {
		panic("xhash: Vec over capacity")
	}
	v.data[i] = x
	return int(i)
}

// Len reports the number of appended elements.
func (v *Vec) Len() int { return int(v.n.Load()) }

// At returns element i.
func (v *Vec) At(i int) int64 { return v.data[i] }

// Data returns the appended prefix. Only valid after all appends complete.
func (v *Vec) Data() []int64 { return v.data[:v.Len()] }
