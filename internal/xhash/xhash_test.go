package xhash

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMapPutGet(t *testing.T) {
	m := NewMap(16)
	for i := int64(0); i < 16; i++ {
		m.Put(i*7, i)
	}
	if m.Len() != 16 {
		t.Fatalf("Len = %d, want 16", m.Len())
	}
	for i := int64(0); i < 16; i++ {
		v, ok := m.Get(i * 7)
		if !ok || v != i {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", i*7, v, ok, i)
		}
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("Get found absent key")
	}
}

func TestMapOverwrite(t *testing.T) {
	m := NewMap(4)
	m.Put(5, 1)
	m.Put(5, 2)
	if v, _ := m.Get(5); v != 2 {
		t.Fatalf("overwrite failed: got %d", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len after overwrite = %d", m.Len())
	}
}

func TestMapNegativeAndExtremeKeys(t *testing.T) {
	m := NewMap(8)
	keys := []int64{-1, -999999999999, 0, 1 << 62, -(1 << 62)}
	for i, k := range keys {
		m.Put(k, int64(i))
	}
	for i, k := range keys {
		v, ok := m.Get(k)
		if !ok || v != int64(i) {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
}

func TestMapPutIfAbsent(t *testing.T) {
	m := NewMap(4)
	v, inserted := m.PutIfAbsent(9, 100)
	if !inserted || v != 100 {
		t.Fatalf("first PutIfAbsent = (%d,%v)", v, inserted)
	}
	v, inserted = m.PutIfAbsent(9, 200)
	if inserted || v != 100 {
		t.Fatalf("second PutIfAbsent = (%d,%v), want existing 100", v, inserted)
	}
}

func TestMapAdd(t *testing.T) {
	m := NewMap(4)
	if got := m.Add(3, 1, 0); got != 1 {
		t.Fatalf("Add fresh = %d", got)
	}
	if got := m.Add(3, 5, 0); got != 6 {
		t.Fatalf("Add existing = %d", got)
	}
	if v, _ := m.Get(3); v != 6 {
		t.Fatalf("Get after Add = %d", v)
	}
}

func TestMapCollisionsAtSmallCapacity(t *testing.T) {
	// A tiny table forces long probe chains; every key must still be found.
	m := NewMap(64)
	for i := int64(0); i < 64; i++ {
		m.Put(i*1024, i)
	}
	for i := int64(0); i < 64; i++ {
		if v, ok := m.Get(i * 1024); !ok || v != i {
			t.Fatalf("collision probe lost key %d", i*1024)
		}
	}
}

func TestMapRange(t *testing.T) {
	m := NewMap(8)
	want := map[int64]int64{1: 10, 2: 20, 3: 30}
	for k, v := range want {
		m.Put(k, v)
	}
	got := map[int64]int64{}
	m.Range(func(k, v int64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range got %d=%d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	m.Range(func(k, v int64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range ignored false return, visited %d", n)
	}
}

func TestMapReservedOperandsPanic(t *testing.T) {
	m := NewMap(4)
	mustPanic(t, func() { m.Put(EmptyKey, 1) })
	mustPanic(t, func() { m.Put(1, reservedVal) })
}

func TestMapOverCapacityPanics(t *testing.T) {
	m := NewMap(2)
	cap := m.Cap()
	for i := 0; i < cap; i++ {
		m.Put(int64(i), 0)
	}
	mustPanic(t, func() { m.Put(int64(cap+1), 0) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestMapConcurrentPutIfAbsentAgrees(t *testing.T) {
	// Many goroutines race to insert the same keys with different values;
	// all racers for a key must adopt the same winning value.
	const keys = 500
	const workers = 8
	m := NewMap(keys)
	results := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := make([]int64, keys)
			for k := 0; k < keys; k++ {
				v, _ := m.PutIfAbsent(int64(k), int64(w*keys+k+1))
				res[k] = v
			}
			results[w] = res
		}(w)
	}
	wg.Wait()
	if m.Len() != keys {
		t.Fatalf("Len = %d, want %d", m.Len(), keys)
	}
	for k := 0; k < keys; k++ {
		want := results[0][k]
		for w := 1; w < workers; w++ {
			if results[w][k] != want {
				t.Fatalf("key %d: worker %d saw %d, worker 0 saw %d", k, w, results[w][k], want)
			}
		}
		if v, ok := m.Get(int64(k)); !ok || v != want {
			t.Fatalf("key %d: Get=(%d,%v), racers saw %d", k, v, ok, want)
		}
	}
}

func TestMapConcurrentAdd(t *testing.T) {
	const keys = 64
	const workers = 8
	const perWorker = 200
	m := NewMap(keys)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Add(int64(i%keys), 1, 0)
			}
		}(w)
	}
	wg.Wait()
	var total int64
	m.Range(func(k, v int64) bool { total += v; return true })
	if total != workers*perWorker {
		t.Fatalf("Add lost updates: total %d, want %d", total, workers*perWorker)
	}
}

func TestMapQuickVsReference(t *testing.T) {
	f := func(keys []int16, vals []int8) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		if n == 0 {
			return true
		}
		m := NewMap(n)
		ref := map[int64]int64{}
		for i := 0; i < n; i++ {
			k, v := int64(keys[i]), int64(vals[i])
			m.Put(k, v)
			ref[k] = v
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := m.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVecConcurrentAppend(t *testing.T) {
	const n = 10_000
	const workers = 8
	v := NewVec(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				v.Append(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if v.Len() != n {
		t.Fatalf("Len = %d, want %d", v.Len(), n)
	}
	seen := make([]bool, n)
	for _, x := range v.Data() {
		if x < 0 || x >= n || seen[x] {
			t.Fatalf("value %d missing or duplicated", x)
		}
		seen[x] = true
	}
}

func TestVecOverCapacityPanics(t *testing.T) {
	v := NewVec(1)
	v.Append(1)
	mustPanic(t, func() { v.Append(2) })
}

func TestVecAt(t *testing.T) {
	v := NewVec(3)
	idx := v.Append(42)
	if v.At(idx) != 42 {
		t.Fatalf("At(%d) = %d", idx, v.At(idx))
	}
}
