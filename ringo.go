package ringo

import (
	"io"

	"ringo/internal/algo"
	"ringo/internal/bitmap"
	"ringo/internal/conv"
	"ringo/internal/core"
	"ringo/internal/extmem"
	"ringo/internal/gen"
	"ringo/internal/graph"
	"ringo/internal/obs"
	"ringo/internal/repl"
	"ringo/internal/server"
	"ringo/internal/table"
)

// Interactive engine and analytics server, re-exported from internal/repl
// and internal/server.
type (
	// Workspace is a named-object session store with provenance and
	// versioned fingerprints; safe for concurrent use.
	Workspace = core.Workspace
	// Object is a workspace value: a table, graph or score map.
	Object = core.Object
	// Engine evaluates the shell command language against a Workspace,
	// returning structured Results.
	Engine = repl.Engine
	// Result is the structured outcome of one evaluated command.
	Result = repl.Result
	// ResultCache is the pluggable cache interface consumed by
	// Engine.SetCache.
	ResultCache = repl.Cache
	// CachedResult is the cacheable payload of an analytics command.
	CachedResult = repl.CachedResult
	// Server is the multi-session analytics HTTP service.
	Server = server.Server
	// ServerConfig sizes a Server (cache entries, job workers, session cap).
	ServerConfig = server.Config
	// Script is a parsed command batch: one verb per line, # comments,
	// @echo/@time/@continue directives (see docs/COMMANDS.md).
	Script = repl.Script
	// ScriptStep is one executable command of a Script with its source line.
	ScriptStep = repl.Step
	// ScriptResult aggregates a batch run: per-step results, errors and
	// wall times plus ok/failed/skipped accounting.
	ScriptResult = repl.ScriptResult
	// ScriptStepResult is one executed step's outcome inside a ScriptResult.
	ScriptStepResult = repl.StepResult
	// MetricsRegistry is the dependency-free metric registry behind
	// GET /metrics and the stats verb: atomic counters and gauges, log₂
	// latency histograms with percentile extraction, Prometheus text
	// exposition via WritePrometheus (see docs/OBSERVABILITY.md).
	MetricsRegistry = obs.Registry
	// MetricLabel is one key=value label on a metric series.
	MetricLabel = obs.Label
	// Telemetry wires an Engine into a host's observability: a shared
	// registry for per-verb metrics, a slog.Logger and threshold for the
	// slow-query log, and a session id to label its records.
	Telemetry = repl.Telemetry
)

// NewWorkspace returns an empty session workspace.
func NewWorkspace() *Workspace { return core.NewWorkspace() }

// NewEngine returns a command evaluator over ws (a fresh workspace if nil).
func NewEngine(ws *Workspace) *Engine { return repl.New(ws) }

// NewServer returns a multi-session analytics server ready to serve HTTP;
// Close it when done.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// ParseScript parses script text (one verb per line, # comments,
// @echo/@time/@continue directives) into an executable Script.
func ParseScript(src string) (*Script, error) { return repl.ParseScript(src) }

// RunScript parses and executes script text against an engine's workspace
// in one batch — the library form of the shell's `source` verb and the
// server's POST /sessions/{id}/script. The error reports parse failures
// only; a failing step is recorded on its ScriptResult step (summarized by
// ScriptResult.Err) with every earlier step's effect kept. See
// ExampleRunScript.
func RunScript(e *Engine, src string) (*ScriptResult, error) {
	s, err := repl.ParseScript(src)
	if err != nil {
		return nil, err
	}
	return e.EvalScript(s), nil
}

// RenderScript writes a script run as the classic shell text, honoring the
// script's @echo and @time directives.
func RenderScript(w io.Writer, sr *ScriptResult) { repl.RenderScript(w, sr) }

// NewMetricsRegistry returns an empty metric registry. Servers construct
// their own (reachable via Server.Metrics); standalone embedders can share
// one across engines through Telemetry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricL builds one metric series label.
func MetricL(key, value string) MetricLabel { return obs.L(key, value) }

// Core data types, re-exported from the engine.
type (
	// Table is Ringo's column-store relational table (§2.3).
	Table = table.Table
	// Schema describes a table's columns.
	Schema = table.Schema
	// Column is one schema entry.
	Column = table.Column
	// ColType is a column type (IntCol, FloatCol, StringCol).
	ColType = table.Type
	// CmpOp is a Select comparison operator.
	CmpOp = table.CmpOp
	// AggOp is a Group/Aggregate operator.
	AggOp = table.AggOp
	// Metric is a SimJoin distance metric.
	Metric = table.Metric
	// Bitmap is the dense selection vector the vectorized execution
	// backend produces: one bit per row, combined wordwise by the boolean
	// connectives, consumed by Table.SelectBitmap.
	Bitmap = bitmap.Bitmap
	// EqIndex is a per-column equality bitmap index: one selection bitmap
	// per distinct value of a low-cardinality int or string column.
	// Workspaces build and cache them by table fingerprint
	// (Workspace.TableEqIndex); BuildEqIndex constructs one standalone.
	EqIndex = table.EqIndex

	// Graph is the dynamic directed graph (§2.2): a hash table of nodes
	// with sorted in/out adjacency vectors.
	Graph = graph.Directed
	// UGraph is the undirected variant.
	UGraph = graph.Undirected
	// Network is a directed multigraph with typed node/edge attributes.
	Network = graph.Network
	// CSR is the static Compressed Sparse Row baseline representation.
	CSR = graph.CSR
	// View is the flat CSR snapshot of a directed graph that algorithms
	// run over; build one with BuildView or fetch a cached one with
	// Workspace.DirectedView.
	View = graph.View
	// UView is the undirected CSR snapshot (Workspace.UndirectedView).
	UView = graph.UView
	// ViewCache is the fingerprint-keyed CSR view cache workspaces carry.
	ViewCache = core.ViewCache

	// Components is a connected-component decomposition result.
	Components = algo.Components
	// HITSScores holds hub and authority score maps.
	HITSScores = algo.HITSScores
	// Scored pairs a node with a score in ranked results.
	Scored = algo.Scored
	// DegreeStats summarizes a degree distribution.
	DegreeStats = algo.DegreeStats
	// EdgeDir selects traversal direction (OutEdges, InEdges, BothDirs).
	EdgeDir = algo.EdgeDir
	// WeightFunc supplies edge lengths for Dijkstra.
	WeightFunc = algo.WeightFunc
)

// Column types.
const (
	IntCol    = table.Int
	FloatCol  = table.Float
	StringCol = table.String
)

// Select comparison operators.
const (
	EQ = table.EQ
	NE = table.NE
	LT = table.LT
	LE = table.LE
	GT = table.GT
	GE = table.GE
)

// Aggregation operators.
const (
	Count = table.Count
	Sum   = table.Sum
	Min   = table.Min
	Max   = table.Max
	Mean  = table.Mean
	First = table.First
)

// SimJoin metrics.
const (
	L1   = table.L1
	L2   = table.L2
	LInf = table.LInf
)

// Traversal directions.
const (
	OutEdges = algo.Out
	InEdges  = algo.In
	BothDirs = algo.Both
)

// NewTable returns an empty table with the given schema.
func NewTable(schema Schema) (*Table, error) { return table.New(schema) }

// NewGraph returns an empty dynamic directed graph.
func NewGraph() *Graph { return graph.NewDirected() }

// NewUGraph returns an empty dynamic undirected graph.
func NewUGraph() *UGraph { return graph.NewUndirected() }

// NewNetwork returns an empty attributed multigraph.
func NewNetwork() *Network { return graph.NewNetwork() }

// LoadTableTSV loads a tab-separated file into a table with the given
// schema; header skips the first line. This is the paper's
// ringo.LoadTableTSV(schema, 'posts.tsv').
func LoadTableTSV(schema Schema, path string, header bool) (*Table, error) {
	return table.LoadTSVFile(path, schema, header)
}

// ReadTableTSV is LoadTableTSV from an io.Reader.
func ReadTableTSV(r io.Reader, schema Schema, header bool) (*Table, error) {
	return table.LoadTSV(r, schema, header)
}

// Select returns the rows of t whose col compares true against val — the
// paper's ringo.Select(P, 'Tag=Java').
func Select(t *Table, col string, op CmpOp, val any) (*Table, error) {
	return t.Select(col, op, val)
}

// SelectExpr filters with a string predicate, the exact front-end form the
// paper shows: ringo.SelectExpr(P, "Tag=Java"). Predicates combine
// column-constant comparisons with and/or/not and parentheses, and execute
// column-at-a-time over bitmap selection vectors (see
// docs/ARCHITECTURE.md, "Table execution").
func SelectExpr(t *Table, expr string) (*Table, error) {
	return t.SelectExpr(expr)
}

// DefaultIndexMaxCardinality bounds how many distinct values a column may
// hold and still be equality-indexable (BuildEqIndex's maxCard <= 0).
const DefaultIndexMaxCardinality = table.DefaultIndexMaxCardinality

// ErrHighCardinality reports that a column exceeds the equality-index
// cardinality cap; BuildEqIndex errors wrap it.
var ErrHighCardinality = table.ErrHighCardinality

// BuildEqIndex builds an equality bitmap index over a low-cardinality int
// or string column: one selection bitmap per distinct value, answering
// EQ/NE filters without a column scan (EqIndex.Lookup + SelectBitmap).
// maxCard <= 0 means DefaultIndexMaxCardinality. Prefer
// Workspace.TableEqIndex for workspace tables — indexes are then cached by
// fingerprint and purged on mutation.
func BuildEqIndex(t *Table, col string, maxCard int) (*EqIndex, error) {
	return table.BuildEqIndex(t, col, maxCard)
}

// Join equi-joins two tables — the paper's ringo.Join(Q, A, 'AnswerId',
// 'PostId'). Colliding column names get -1/-2 suffixes.
func Join(left, right *Table, leftCol, rightCol string) (*Table, error) {
	return left.Join(right, leftCol, rightCol)
}

// LeftJoin is Join preserving unmatched left rows; missing right cells read
// as nullInt / NaN / "".
func LeftJoin(left, right *Table, leftCol, rightCol string, nullInt int64) (*Table, error) {
	return left.LeftJoin(right, leftCol, rightCol, nullInt)
}

// ToGraph converts an edge table to Ringo's directed graph structure using
// the parallel sort-first algorithm (§2.4).
func ToGraph(t *Table, srcCol, dstCol string) (*Graph, error) {
	return core.ToGraph(t, srcCol, dstCol)
}

// ToUGraph converts an edge table to an undirected graph.
func ToUGraph(t *Table, srcCol, dstCol string) (*UGraph, error) {
	return core.ToUGraph(t, srcCol, dstCol)
}

// ToTable converts a directed graph back to an edge table, in parallel.
func ToTable(g *Graph, srcName, dstName string) (*Table, error) {
	return core.ToTable(g, srcName, dstName)
}

// ToNodeTable converts a graph's node set to a one-column table.
func ToNodeTable(g *Graph, name string) (*Table, error) {
	return core.ToNodeTable(g, name)
}

// AsUndirected returns the undirected view of a directed graph.
func AsUndirected(g *Graph) *UGraph { return graph.AsUndirected(g) }

// BuildCSR snapshots a directed graph into the static CSR representation.
func BuildCSR(g *Graph) *CSR { return graph.FromDirected(g) }

// BuildView snapshots a directed graph into the flat CSR view the
// algorithm library runs over (built in parallel). Prefer
// Workspace.DirectedView when the graph lives in a workspace: the view is
// then cached by fingerprint and rebuilt only after mutations.
func BuildView(g *Graph) *View { return graph.BuildView(g) }

// BuildUView snapshots an undirected graph into its flat CSR view (see
// BuildView; the workspace counterpart is Workspace.UndirectedView).
func BuildUView(g *UGraph) *UView { return graph.BuildUView(g) }

// Incremental analytics on mutating graphs: fine-grained mutations of a
// workspace graph binding (Workspace.AddGraphEdge / DelGraphEdge /
// AddGraphNode) append typed deltas to a per-binding log instead of
// purging cached views; the next view fetch patches the nearest resident
// CSR snapshot forward when the pending batch is small (see
// DefaultPatchRatio), and the Incr algorithm variants update a previous
// answer instead of recomputing (docs/ARCHITECTURE.md, "Incremental
// analytics").
type (
	// Delta is one logged graph mutation: an operation plus its endpoints.
	Delta = graph.Delta
	// DeltaOp tags a Delta (DeltaAddNode, DeltaAddEdge, DeltaDelEdge).
	DeltaOp = graph.DeltaOp
)

// Delta operations.
const (
	DeltaAddNode = graph.DeltaAddNode
	DeltaAddEdge = graph.DeltaAddEdge
	DeltaDelEdge = graph.DeltaDelEdge
)

// DefaultPatchRatio is the workspace's patch-vs-rebuild cutoff: a view is
// patched when the pending delta batch is at most this fraction of the
// base view's V+E (Workspace.ConfigurePatching overrides; <= 0 disables
// patching).
const DefaultPatchRatio = core.DefaultPatchRatio

// DefaultPageRankTol is the convergence tolerance PageRankViewTol and
// PageRankIncr share when callers have no stricter requirement.
const DefaultPageRankTol = algo.DefaultPageRankTol

// ReservedNodeID is the node id the graph structures reserve internally;
// mutations addressing it are rejected.
const ReservedNodeID = graph.ReservedNodeID

// PatchView merges a delta batch into a directed CSR view, producing the
// snapshot a full rebuild of the current graph would produce. hasNode and
// hasEdge answer membership on the *current* graph (e.g. g.HasNode,
// g.HasEdge), which makes the patch insensitive to duplicate or
// cancelling deltas. Workspaces do this automatically; the free function
// serves embedders managing their own views.
func PatchView(base *View, hasNode func(int64) bool, hasEdge func(src, dst int64) bool, deltas []Delta) *View {
	return graph.PatchView(base, hasNode, hasEdge, deltas)
}

// PatchUView is PatchView for undirected views; hasEdge must be
// symmetric.
func PatchUView(base *UView, hasNode func(int64) bool, hasEdge func(a, b int64) bool, deltas []Delta) *UView {
	return graph.PatchUView(base, hasNode, hasEdge, deltas)
}

// PageRankViewTol iterates PageRank over a prebuilt view to a convergence
// tolerance — the cold oracle PageRankIncr is equivalent to.
func PageRankViewTol(v *View, damping, tol float64) map[int64]float64 {
	return algo.PageRankViewTol(v, damping, tol)
}

// PageRankIncr is dynamic PageRank: seeded from a previous score map,
// residual pushing plus a tolerance-driven polish make it agree with
// PageRankViewTol on the current view while doing work proportional to
// how much the solution moved.
func PageRankIncr(v *View, prev map[int64]float64, damping, tol float64) map[int64]float64 {
	return algo.PageRankIncr(v, prev, damping, tol)
}

// GetWCCIncr updates a weakly-connected-components result across addition
// deltas (identical labels to GetWCCView). ok is false when the batch
// contains an edge deletion — fall back to GetWCCView.
func GetWCCIncr(v *View, prev Components, deltas []Delta) (Components, bool) {
	return algo.WCCIncr(v, prev, deltas)
}

// CountTrianglesIncr updates a global triangle count across a mutation
// batch by examining only the wedges the changed edges touch (exactly
// CountTrianglesView of the new view).
func CountTrianglesIncr(oldV, newV *UView, oldCount int64, deltas []Delta) int64 {
	return algo.TrianglesIncr(oldV, newV, oldCount, deltas)
}

// PageRankView runs parallel PageRank over a prebuilt CSR view — the
// zero-conversion path a cached view enables. Every Get* algorithm has a
// *View sibling in the underlying library; the most common are re-exported
// here.
func PageRankView(v *View, damping float64, iters int) map[int64]float64 {
	return algo.PageRankView(v, damping, iters)
}

// GetWCCView computes weakly connected components over a prebuilt view.
func GetWCCView(v *View) Components { return algo.WCCView(v) }

// GetSCCView computes strongly connected components over a prebuilt view.
func GetSCCView(v *View) Components { return algo.SCCView(v) }

// GetBFSView returns hop distances from src over a prebuilt view.
func GetBFSView(v *View, src int64, dir EdgeDir) map[int64]int {
	return algo.BFSView(v, src, dir)
}

// CountTrianglesView counts triangles over a prebuilt undirected view.
func CountTrianglesView(v *UView) int64 { return algo.TrianglesView(v) }

// GetCoreNumbersView computes core numbers over a prebuilt undirected view.
func GetCoreNumbersView(v *UView) map[int64]int { return algo.CoreNumbersView(v) }

// LoadEdgeList reads a SNAP-style edge list file into a directed graph.
func LoadEdgeList(path string) (*Graph, error) { return graph.LoadEdgeListFile(path) }

// LoadEdgeListParallel reads a SNAP-style edge list file with the parallel
// ingest pipeline: chunked parsing on all cores feeding the sort-first bulk
// constructor. It accepts the same inputs and builds the same graph as
// LoadEdgeList, minus the sequential scanner's 4 MiB line cap.
func LoadEdgeListParallel(path string) (*Graph, error) {
	return graph.LoadEdgeListParallelFile(path)
}

// BuildDirected bulk-constructs a directed graph from raw (src, dst) edge
// pairs: parallel sort, dedup, flat-arena adjacency. Equivalent to calling
// AddEdge per pair, without the per-edge sorted inserts.
func BuildDirected(edges [][2]int64) (*Graph, error) { return graph.BuildDirected(edges) }

// BuildUndirected bulk-constructs an undirected graph from raw edge pairs.
func BuildUndirected(edges [][2]int64) (*UGraph, error) { return graph.BuildUndirected(edges) }

// SaveEdgeList writes a directed graph as an edge list file. Isolated nodes
// are kept through the round trip as "# node <id>" comment lines.
func SaveEdgeList(path string, g *Graph) error { return graph.SaveEdgeListFile(path, g) }

// SaveGraphBinary writes a graph in the fast binary format.
func SaveGraphBinary(path string, g *Graph) error { return graph.SaveBinaryFile(path, g) }

// LoadGraphBinary reads a graph written by SaveGraphBinary.
func LoadGraphBinary(path string) (*Graph, error) { return graph.LoadBinaryFile(path) }

// LoadGraphAuto loads a directed graph from either on-disk format, sniffing
// the binary magic bytes and falling back to edge-list text.
func LoadGraphAuto(path string) (*Graph, error) { return graph.LoadFileAuto(path) }

// MappedGraph is a validated RNGM mapped CSR graph image: the beyond-RAM
// storage tier. Its View/UView serve analytics straight off the file
// through the page cache — no decode, no heap copy. Close it when done
// (a GC cleanup unmaps abandoned graphs as a backstop).
type MappedGraph = extmem.Graph

// ErrNoMmap reports that this platform cannot memory-map RNGM images;
// OpenMapped still loads them by copying the file into memory.
var ErrNoMmap = extmem.ErrNoMmap

// SaveMapped writes a directed CSR view as an RNGM mapped image — the
// page-aligned, checksummed on-disk layout OpenMapped serves in place
// (docs/FORMATS.md has the byte layout). Written atomically.
func SaveMapped(path string, v *View) error { return extmem.SaveMapped(path, v) }

// SaveMappedUndirected writes an undirected CSR view as an RNGM image.
func SaveMappedUndirected(path string, u *UView) error {
	return extmem.SaveMappedUndirected(path, u)
}

// OpenMapped validates an RNGM image and serves it from mmap where the
// platform supports it (linux, darwin), falling back to an in-memory copy
// elsewhere — MappedGraph.Mapped() reports which tier you got.
func OpenMapped(path string) (*MappedGraph, error) { return extmem.Open(path) }

// PageRankExt is the semi-external PageRank: vertex state on the heap,
// edges streamed from the (typically mapped) view in blocks. Produces
// bit-identical scores to PageRankView.
func PageRankExt(v *View, damping float64, iters int) map[int64]float64 {
	return algo.PageRankExt(v, damping, iters)
}

// GetWCCExt computes weakly connected components semi-externally,
// skipping vertex blocks with no edges (identical results to GetWCCView).
func GetWCCExt(v *View) Components { return algo.WCCExt(v) }

// GetBFSExt is the semi-external BFS: level-synchronous with whole vertex
// blocks skipped while no frontier vertex lives in them (identical results
// to GetBFSView).
func GetBFSExt(v *View, src int64, dir EdgeDir) map[int64]int {
	return algo.BFSExt(v, src, dir)
}

// ExtBlockStats reports the semi-external scheduler's process-wide totals:
// vertex blocks scanned vs skipped by the *Ext algorithms.
func ExtBlockStats() (scanned, skipped int64) { return algo.ExtBlockStats() }

// ProjectUView materializes the undirected projection of a directed CSR
// view (the merged union of in- and out-neighbors per node) — how
// undirected analytics run over a mapped directed image.
func ProjectUView(v *View) *UView { return graph.ProjectUView(v) }

// SaveUGraphBinary writes an undirected graph in the binary format's
// undirected variant.
func SaveUGraphBinary(w io.Writer, g *UGraph) error { return graph.SaveBinaryUndirected(w, g) }

// LoadUGraphBinary reads a graph written by SaveUGraphBinary.
func LoadUGraphBinary(r io.Reader) (*UGraph, error) { return graph.LoadBinaryUndirected(r) }

// SnapshotWorkspace serializes an entire workspace — tables, graphs, score
// maps, with each binding's provenance, version and fingerprint — to w in
// the binary snapshot format (checksummed per object, encoded in parallel).
func SnapshotWorkspace(ws *Workspace, w io.Writer) error { return ws.Snapshot(w) }

// RestoreWorkspace reads a snapshot written by SnapshotWorkspace into a
// fresh workspace, reproducing provenance, versions and fingerprints.
func RestoreWorkspace(r io.Reader) (*Workspace, error) {
	ws := core.NewWorkspace()
	if err := ws.Restore(r); err != nil {
		return nil, err
	}
	return ws, nil
}

// TableFromMap builds a (key, score) table from an algorithm result,
// descending by score — the paper's ringo.TableFromHashMap(PR, 'User',
// 'Scr').
func TableFromMap(m map[int64]float64, keyCol, valCol string) (*Table, error) {
	return core.TableFromMap(m, keyCol, valCol)
}

// TableFromIntMap builds a (key, value) table from integer-valued results.
func TableFromIntMap(m map[int64]int, keyCol, valCol string) (*Table, error) {
	return core.TableFromIntMap(m, keyCol, valCol)
}

// GetPageRank runs 10 iterations of parallel PageRank (damping 0.85), the
// configuration benchmarked in Table 3 of the paper.
func GetPageRank(g *Graph) map[int64]float64 { return core.GetPageRank(g) }

// PageRank runs parallel PageRank with explicit parameters.
func PageRank(g *Graph, damping float64, iters int) map[int64]float64 {
	return algo.PageRank(g, damping, iters)
}

// PageRankSeq is the sequential PageRank baseline.
func PageRankSeq(g *Graph, damping float64, iters int) map[int64]float64 {
	return algo.PageRankSeq(g, damping, iters)
}

// PersonalizedPageRank runs PageRank with teleport restricted to seeds.
func PersonalizedPageRank(g *Graph, seeds []int64, damping float64, iters int) map[int64]float64 {
	return algo.PersonalizedPageRank(g, seeds, damping, iters)
}

// GetHits computes hub and authority scores (Kleinberg's HITS).
func GetHits(g *Graph, iters int) HITSScores { return algo.HITS(g, iters) }

// CountTriangles counts undirected triangles in parallel (Table 3).
func CountTriangles(g *UGraph) int64 { return algo.Triangles(g) }

// CountTrianglesSeq is the sequential triangle-count baseline.
func CountTrianglesSeq(g *UGraph) int64 { return algo.TrianglesSeq(g) }

// NodeTriangles counts triangles per node.
func NodeTriangles(g *UGraph) map[int64]int64 { return algo.NodeTriangles(g) }

// GetClusteringCoefficient returns the average local clustering
// coefficient.
func GetClusteringCoefficient(g *UGraph) float64 { return algo.ClusteringCoefficient(g) }

// GetBFS returns hop distances from src following dir edges.
func GetBFS(g *Graph, src int64, dir EdgeDir) map[int64]int { return algo.BFS(g, src, dir) }

// GetBFSParallel is the level-synchronous parallel BFS (identical results
// to GetBFS).
func GetBFSParallel(g *Graph, src int64, dir EdgeDir) map[int64]int {
	return algo.BFSParallel(g, src, dir)
}

// GetSSSP returns unweighted single-source shortest-path distances
// (Table 6).
func GetSSSP(g *Graph, src int64) map[int64]int { return algo.SSSPUnweighted(g, src) }

// GetShortestPath returns the hop distance from src to dst, or -1.
func GetShortestPath(g *Graph, src, dst int64) int { return algo.ShortestPath(g, src, dst) }

// Dijkstra computes weighted shortest paths with non-negative weights.
func Dijkstra(g *Graph, src int64, w WeightFunc) map[int64]float64 {
	return algo.Dijkstra(g, src, w)
}

// GetWCC computes weakly connected components.
func GetWCC(g *Graph) Components { return algo.WCC(g) }

// GetWCCParallel computes weakly connected components with parallel
// hash-min label propagation (identical results to GetWCC).
func GetWCCParallel(g *Graph) Components { return algo.WCCParallel(g) }

// LargestWCC returns the subgraph induced by the largest weak component.
func LargestWCC(g *Graph) *Graph { return algo.LargestWCC(g) }

// GetSCC computes strongly connected components (iterative Tarjan,
// Table 6).
func GetSCC(g *Graph) Components { return algo.SCC(g) }

// GetCoreNumbers computes the core number of every node.
func GetCoreNumbers(g *UGraph) map[int64]int { return algo.CoreNumbers(g) }

// GetKCore returns the k-core subgraph (Table 6 benchmarks the 3-core).
func GetKCore(g *UGraph, k int) *UGraph { return algo.KCore(g, k) }

// GetKCoreDirected returns the k-core of a directed graph's undirected
// view.
func GetKCoreDirected(g *Graph, k int) *UGraph { return algo.KCoreDirected(g, k) }

// GetOutDegreeStats summarizes the out-degree distribution.
func GetOutDegreeStats(g *Graph) DegreeStats { return algo.OutDegreeStats(g) }

// GetInDegreeStats summarizes the in-degree distribution.
func GetInDegreeStats(g *Graph) DegreeStats { return algo.InDegreeStats(g) }

// GetDegreeHistogram returns (out-degree, count) pairs ascending.
func GetDegreeHistogram(g *Graph) [][2]int64 { return algo.DegreeHistogram(g) }

// GetDegreeCentrality returns normalized degree centralities.
func GetDegreeCentrality(g *UGraph) map[int64]float64 { return algo.DegreeCentrality(g) }

// MaxNode returns the node with the highest out-degree.
func MaxNode(g *Graph) (id int64, deg int, ok bool) { return algo.MaxDegreeNode(g) }

// GetCloseness returns the closeness centrality of one node.
func GetCloseness(g *Graph, id int64) float64 { return algo.Closeness(g, id) }

// GetApproxBetweenness estimates betweenness centrality from sampled
// sources.
func GetApproxBetweenness(g *Graph, samples int, seed int64) map[int64]float64 {
	return algo.ApproxBetweenness(g, samples, seed)
}

// GetEccentricity returns a node's eccentricity (direction ignored).
func GetEccentricity(g *Graph, id int64) int { return algo.Eccentricity(g, id) }

// GetApproxDiameter estimates the diameter from sampled BFS runs.
func GetApproxDiameter(g *Graph, samples int, seed int64) int {
	return algo.ApproxDiameter(g, samples, seed)
}

// GetCommunities runs label-propagation community detection.
func GetCommunities(g *UGraph, maxIters int, seed int64) map[int64]int {
	return algo.LabelPropagation(g, maxIters, seed)
}

// GetModularity scores a community assignment.
func GetModularity(g *UGraph, comm map[int64]int) float64 { return algo.Modularity(g, comm) }

// Louvain detects communities by modularity maximization, returning the
// partition and its modularity.
func Louvain(g *UGraph, maxPasses int) (map[int64]int, float64) {
	return algo.Louvain(g, maxPasses)
}

// GreedyColoring properly colors the graph (Welsh-Powell heuristic),
// returning the coloring and the number of colors used.
func GreedyColoring(g *UGraph) (map[int64]int, int) { return algo.GreedyColoring(g) }

// MaximalMatching returns a deterministic greedy maximal matching.
func MaximalMatching(g *UGraph) [][2]int64 { return algo.MaximalMatching(g) }

// IndependentSetGreedy returns a maximal independent set.
func IndependentSetGreedy(g *UGraph) []int64 { return algo.IndependentSetGreedy(g) }

// GetRandomWalk returns a seeded random walk from start.
func GetRandomWalk(g *Graph, start int64, length int, seed int64) []int64 {
	return algo.RandomWalk(g, start, length, seed)
}

// TopK returns the k highest-scored nodes, descending.
func TopK(scores map[int64]float64, k int) []Scored { return algo.TopK(scores, k) }

// Generators (offline stand-ins for the paper's datasets; see internal/gen).

// GenRMATTable generates an R-MAT edge table with power-law degree skew
// (2^scale node id space, nEdges rows).
func GenRMATTable(scale int, nEdges int64, seed int64) *Table {
	return gen.RMATTable(scale, nEdges, seed)
}

// GenGNM generates a uniform random directed graph with n nodes, m edges.
func GenGNM(n int, m int64, seed int64) *Graph { return gen.GNM(n, m, seed) }

// GenGNP generates a directed G(n,p) random graph.
func GenGNP(n int, p float64, seed int64) *Graph { return gen.GNP(n, p, seed) }

// GenBarabasiAlbert generates a preferential-attachment graph.
func GenBarabasiAlbert(n, m int, seed int64) *UGraph { return gen.BarabasiAlbert(n, m, seed) }

// GenWattsStrogatz generates a small-world graph.
func GenWattsStrogatz(n, k int, beta float64, seed int64) *UGraph {
	return gen.WattsStrogatz(n, k, beta, seed)
}

// SOConfig configures the synthetic StackOverflow posts generator.
type SOConfig = gen.SOConfig

// SOSchema is the posts-table schema used by the §4.1 demo.
var SOSchema = gen.SOSchema

// DefaultSOConfig returns the demo-sized StackOverflow configuration.
func DefaultSOConfig() SOConfig { return gen.DefaultSOConfig() }

// GenStackOverflowPosts generates the synthetic Q&A posts table standing in
// for the StackOverflow dump of the paper's demo.
func GenStackOverflowPosts(cfg SOConfig) (*Table, error) { return gen.StackOverflowPosts(cfg) }

// SimJoinTables joins rows of two tables whose numeric feature vectors are
// within threshold (§2.3's SimJoin).
func SimJoinTables(left, right *Table, leftCols, rightCols []string, threshold float64, m Metric) (*Table, error) {
	return left.SimJoin(right, leftCols, rightCols, threshold, m)
}

// NextK joins each row with its next k successors within a group ordered by
// a time column (§2.3's NextK).
func NextK(t *Table, groupCol, orderCol string, k int) (*Table, error) {
	return t.NextK(groupCol, orderCol, k)
}

// NaiveToGraph is the per-edge-insertion conversion baseline (ablation for
// the sort-first design choice).
func NaiveToGraph(t *Table, srcCol, dstCol string) (*Graph, error) {
	return conv.NaiveToDirected(t, srcCol, dstCol)
}

// ToNetwork converts an edge table to an attributed multigraph: one edge
// per row (parallel edges preserved), with the named extra columns attached
// as edge attributes — Ringo's path for keeping row payloads on graphs.
func ToNetwork(t *Table, srcCol, dstCol string, attrCols ...string) (*Network, error) {
	return conv.ToNetwork(t, srcCol, dstCol, attrCols...)
}

// MSTEdge is an edge of a minimum spanning forest.
type MSTEdge = algo.MSTEdge

// MotifCounts holds directed 3-node motif statistics.
type MotifCounts = algo.MotifCounts

// GetArticulationPoints returns the cut vertices of an undirected graph.
func GetArticulationPoints(g *UGraph) []int64 { return algo.ArticulationPoints(g) }

// GetBridges returns the cut edges of an undirected graph.
func GetBridges(g *UGraph) [][2]int64 { return algo.Bridges(g) }

// TopoSort returns a topological order, or an error on cyclic graphs.
func TopoSort(g *Graph) ([]int64, error) { return algo.TopoSort(g) }

// IsDAG reports whether the directed graph is acyclic.
func IsDAG(g *Graph) bool { return algo.IsDAG(g) }

// Bipartition two-colors an undirected graph; ok is false when the graph
// has an odd cycle.
func Bipartition(g *UGraph) (side map[int64]int, ok bool) { return algo.Bipartition(g) }

// MinimumSpanningForest computes a minimum spanning forest under w.
func MinimumSpanningForest(g *UGraph, w func(u, v int64) float64) ([]MSTEdge, float64) {
	return algo.MinimumSpanningForest(g, w)
}

// CountMotifs counts directed triangle motifs and wedges.
func CountMotifs(g *Graph) MotifCounts { return algo.CountMotifs(g) }

// PageRankConverged iterates PageRank to an L1 tolerance, returning scores
// and the iterations used.
func PageRankConverged(g *Graph, damping, tol float64, maxIters int) (map[int64]float64, int) {
	return algo.PageRankConverged(g, damping, tol, maxIters)
}

// PredictedLink is a scored candidate edge from link prediction.
type PredictedLink = algo.PredictedLink

// SIRResult summarizes an SIR epidemic simulation.
type SIRResult = algo.SIRResult

// CommonNeighbors counts shared neighbors of two nodes.
func CommonNeighbors(g *UGraph, u, v int64) int { return algo.CommonNeighbors(g, u, v) }

// Jaccard returns the neighborhood Jaccard similarity of two nodes.
func Jaccard(g *UGraph, u, v int64) float64 { return algo.Jaccard(g, u, v) }

// AdamicAdar returns the Adamic-Adar link-prediction index of two nodes.
func AdamicAdar(g *UGraph, u, v int64) float64 { return algo.AdamicAdar(g, u, v) }

// PreferentialAttachment returns deg(u)×deg(v).
func PreferentialAttachment(g *UGraph, u, v int64) int {
	return algo.PreferentialAttachment(g, u, v)
}

// PredictLinks returns the top-k non-edges ranked by Adamic-Adar score.
func PredictLinks(g *UGraph, k int) []PredictedLink { return algo.PredictLinks(g, k) }

// GetReciprocity returns the fraction of reciprocated directed edges.
func GetReciprocity(g *Graph) float64 { return algo.Reciprocity(g) }

// GetDegreeAssortativity returns Newman's degree assortativity r.
func GetDegreeAssortativity(g *UGraph) float64 { return algo.DegreeAssortativity(g) }

// GetEffectiveDiameter estimates the 90th-percentile distance from sampled
// BFS runs.
func GetEffectiveDiameter(g *Graph, samples int, seed int64) float64 {
	return algo.EffectiveDiameter(g, samples, seed)
}

// FitPowerLaw fits the degree-distribution exponent alpha over degrees >=
// dmin.
func FitPowerLaw(g *UGraph, dmin int) (alpha float64, ok bool) {
	return algo.PowerLawExponent(g, dmin)
}

// GetDegreePercentiles returns out-degree percentiles (0-100).
func GetDegreePercentiles(g *Graph, pcts []float64) []int {
	return algo.DegreePercentiles(g, pcts)
}

// SimulateCascade runs the independent cascade diffusion model from seeds.
func SimulateCascade(g *Graph, seeds []int64, p float64, seed int64) map[int64]int {
	return algo.IndependentCascade(g, seeds, p, seed)
}

// SimulateSIR runs a discrete SIR epidemic on an undirected graph.
func SimulateSIR(g *UGraph, seeds []int64, beta, gamma float64, seed int64) SIRResult {
	return algo.SIR(g, seeds, beta, gamma, seed)
}

// Subgraph returns the induced subgraph on the given node ids.
func Subgraph(g *Graph, ids []int64) *Graph { return graph.Subgraph(g, ids) }

// SubgraphUndirected returns the induced undirected subgraph.
func SubgraphUndirected(g *UGraph, ids []int64) *UGraph { return graph.SubgraphUndirected(g, ids) }

// ReverseGraph returns the graph with all edges flipped.
func ReverseGraph(g *Graph) *Graph { return graph.Reverse(g) }

// UnionGraphs returns the union of two directed graphs.
func UnionGraphs(a, b *Graph) *Graph { return graph.Union(a, b) }
