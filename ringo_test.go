package ringo_test

import (
	"testing"

	"ringo"
)

// TestStackOverflowExpertDemo runs the paper's §4.1 demo end to end on the
// synthetic posts table: load posts, select the Java ones, split questions
// from answers, join questions with their accepted answers, build the
// asker→answerer graph, run PageRank, and produce the experts table.
func TestStackOverflowExpertDemo(t *testing.T) {
	posts, err := ringo.GenStackOverflowPosts(ringo.DefaultSOConfig())
	if err != nil {
		t.Fatal(err)
	}
	jp, err := ringo.Select(posts, "Tag", ringo.EQ, "Java")
	if err != nil {
		t.Fatal(err)
	}
	q, err := ringo.Select(jp, "Type", ringo.EQ, "question")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ringo.Select(jp, "Type", ringo.EQ, "answer")
	if err != nil {
		t.Fatal(err)
	}
	qa, err := ringo.Join(q, a, "AcceptedId", "PostId")
	if err != nil {
		t.Fatal(err)
	}
	if qa.NumRows() == 0 {
		t.Fatal("no accepted Java answers; demo degenerate")
	}
	// Joining posts with posts collides every column: UserId-1 is the
	// asker, UserId-2 the accepted answerer.
	g, err := ringo.ToGraph(qa, "UserId-1", "UserId-2")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == 0 {
		t.Fatal("empty expert graph")
	}
	pr := ringo.GetPageRank(g)
	experts, err := ringo.TableFromMap(pr, "User", "Scr")
	if err != nil {
		t.Fatal(err)
	}
	if experts.NumRows() != g.NumNodes() {
		t.Fatalf("experts table %d rows for %d nodes", experts.NumRows(), g.NumNodes())
	}
	// Scores descending; the top expert should have answered at least one
	// accepted Java answer (i.e. have an in-edge).
	scr, err := experts.FloatCol("Scr")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(scr); i++ {
		if scr[i-1] < scr[i] {
			t.Fatal("experts table not sorted by score")
		}
	}
	users, _ := experts.IntCol("User")
	if g.InDeg(users[0]) == 0 {
		t.Fatalf("top expert %d has no accepted answers", users[0])
	}
}

// TestFigure2Workflow exercises the full analytics loop of Figure 2:
// tables -> graph construction -> graph analytics -> results back into
// tables.
func TestFigure2Workflow(t *testing.T) {
	edges := ringo.GenRMATTable(10, 4000, 5)
	g, err := ringo.ToGraph(edges, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	// Analytics.
	pr := ringo.GetPageRank(g)
	wcc := ringo.GetWCC(g)
	tri := ringo.CountTriangles(ringo.AsUndirected(g))
	if tri < 0 {
		t.Fatal("negative triangles")
	}
	// Results back to tables and joined with node table.
	prTable, err := ringo.TableFromMap(pr, "node", "rank")
	if err != nil {
		t.Fatal(err)
	}
	compTable, err := ringo.TableFromIntMap(wcc.Label, "node", "comp")
	if err != nil {
		t.Fatal(err)
	}
	joined, err := ringo.Join(prTable, compTable, "node", "node")
	if err != nil {
		t.Fatal(err)
	}
	if joined.NumRows() != g.NumNodes() {
		t.Fatalf("joined analytics table %d rows for %d nodes", joined.NumRows(), g.NumNodes())
	}
	// Aggregate rank mass per component — table analytics on graph results.
	byComp, err := joined.Aggregate([]string{"comp"}, ringo.Sum, "rank", "mass")
	if err != nil {
		t.Fatal(err)
	}
	if byComp.NumRows() != wcc.Count {
		t.Fatalf("aggregated %d components, want %d", byComp.NumRows(), wcc.Count)
	}
	mass, _ := byComp.FloatCol("mass")
	var total float64
	for _, m := range mass {
		total += m
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("total rank mass = %v", total)
	}
}

func TestRoundTripThroughEdgeListFile(t *testing.T) {
	g := ringo.GenGNM(50, 200, 9)
	path := t.TempDir() + "/g.tsv"
	if err := ringo.SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ringo.LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatal("edge list round trip mismatch")
	}
	// The parallel loader must read the same file into the same graph.
	parG, err := ringo.LoadEdgeListParallel(path)
	if err != nil {
		t.Fatal(err)
	}
	if parG.NumNodes() != g.NumNodes() || parG.NumEdges() != g.NumEdges() {
		t.Fatal("parallel edge list load mismatch")
	}
}

func TestFacadeBulkBuild(t *testing.T) {
	edges := [][2]int64{{1, 2}, {2, 3}, {3, 1}, {1, 2}, {4, 4}}
	g, err := ringo.BuildDirected(edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 4 { // duplicate collapsed, self-loop kept
		t.Fatalf("BuildDirected: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	u, err := ringo.BuildUndirected(edges)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumNodes() != 4 || u.NumEdges() != 4 {
		t.Fatalf("BuildUndirected: %d nodes, %d edges", u.NumNodes(), u.NumEdges())
	}
}

func TestEdgeListRoundTripKeepsIsolatedNodes(t *testing.T) {
	g := ringo.NewGraph()
	g.AddEdge(1, 2)
	g.AddNode(99)
	path := t.TempDir() + "/iso.tsv"
	if err := ringo.SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	for _, load := range []func(string) (*ringo.Graph, error){
		ringo.LoadEdgeList, ringo.LoadEdgeListParallel, ringo.LoadGraphAuto,
	} {
		back, err := load(path)
		if err != nil {
			t.Fatal(err)
		}
		if !back.HasNode(99) || back.NumNodes() != 3 {
			t.Fatal("text round trip lost the isolated node")
		}
	}
}

func TestFacadeAlgorithmSurface(t *testing.T) {
	g := ringo.GenGNM(60, 400, 4)
	u := ringo.AsUndirected(g)

	if got := ringo.PageRankSeq(g, 0.85, 5); len(got) != 60 {
		t.Fatal("PageRankSeq size")
	}
	if got := ringo.PersonalizedPageRank(g, []int64{1}, 0.85, 5); len(got) != 60 {
		t.Fatal("PPR size")
	}
	hits := ringo.GetHits(g, 10)
	if len(hits.Hub) != 60 || len(hits.Authority) != 60 {
		t.Fatal("HITS size")
	}
	if ringo.CountTriangles(u) != ringo.CountTrianglesSeq(u) {
		t.Fatal("triangle variants disagree")
	}
	if cc := ringo.GetClusteringCoefficient(u); cc < 0 || cc > 1 {
		t.Fatalf("clustering coefficient %v", cc)
	}
	if len(ringo.NodeTriangles(u)) != 60 {
		t.Fatal("NodeTriangles size")
	}
	src := g.Nodes()[0]
	bfs := ringo.GetBFS(g, src, ringo.OutEdges)
	sssp := ringo.GetSSSP(g, src)
	if len(bfs) != len(sssp) {
		t.Fatal("BFS and SSSP disagree")
	}
	if d := ringo.GetShortestPath(g, src, src); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
	if dj := ringo.Dijkstra(g, src, func(a, b int64) float64 { return 1 }); len(dj) != len(bfs) {
		t.Fatal("Dijkstra reach differs from BFS")
	}
	wcc := ringo.GetWCC(g)
	scc := ringo.GetSCC(g)
	if wcc.Count > scc.Count {
		t.Fatal("WCC cannot have more components than SCC")
	}
	cores := ringo.GetCoreNumbers(u)
	if len(cores) != 60 {
		t.Fatal("core numbers size")
	}
	k2 := ringo.GetKCore(u, 2)
	k2d := ringo.GetKCoreDirected(g, 2)
	if k2.NumNodes() != k2d.NumNodes() {
		t.Fatal("KCore variants disagree")
	}
	if ringo.GetOutDegreeStats(g).Mean <= 0 || ringo.GetInDegreeStats(g).Mean <= 0 {
		t.Fatal("degree stats")
	}
	if len(ringo.GetDegreeHistogram(g)) == 0 {
		t.Fatal("histogram empty")
	}
	if len(ringo.GetDegreeCentrality(u)) != 60 {
		t.Fatal("degree centrality size")
	}
	if ringo.GetCloseness(g, src) <= 0 {
		t.Fatal("closeness of connected node should be positive")
	}
	if len(ringo.GetApproxBetweenness(g, 10, 1)) != 60 {
		t.Fatal("betweenness size")
	}
	if ringo.GetEccentricity(g, src) <= 0 {
		t.Fatal("eccentricity")
	}
	if ringo.GetApproxDiameter(g, 5, 1) <= 0 {
		t.Fatal("diameter")
	}
	comm := ringo.GetCommunities(u, 10, 1)
	if len(comm) != 60 {
		t.Fatal("communities size")
	}
	_ = ringo.GetModularity(u, comm)
	if walk := ringo.GetRandomWalk(g, src, 10, 3); len(walk) == 0 {
		t.Fatal("random walk empty")
	}
	if top := ringo.TopK(ringo.GetPageRank(g), 5); len(top) != 5 {
		t.Fatal("TopK size")
	}
	csr := ringo.BuildCSR(g)
	if csr.NumEdges() != g.NumEdges() {
		t.Fatal("CSR edge count")
	}
}

func TestNaiveToGraphMatches(t *testing.T) {
	tbl := ringo.GenRMATTable(9, 2000, 8)
	fast, err := ringo.ToGraph(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	naive, err := ringo.NaiveToGraph(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if fast.NumNodes() != naive.NumNodes() || fast.NumEdges() != naive.NumEdges() {
		t.Fatal("conversion variants disagree")
	}
}

func TestTableVerbsSurface(t *testing.T) {
	tbl, err := ringo.NewTable(ringo.Schema{
		{Name: "g", Type: ringo.IntCol},
		{Name: "t", Type: ringo.FloatCol},
		{Name: "who", Type: ringo.StringCol},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tbl.AppendRow(i%2, float64(i), "u"); err != nil {
			t.Fatal(err)
		}
	}
	nk, err := ringo.NextK(tbl, "g", "t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if nk.NumRows() != 8 {
		t.Fatalf("NextK rows = %d", nk.NumRows())
	}
	sj, err := ringo.SimJoinTables(tbl, tbl, []string{"t"}, []string{"t"}, 0.5, ringo.L2)
	if err != nil {
		t.Fatal(err)
	}
	if sj.NumRows() != 10 { // only exact self-matches within 0.5
		t.Fatalf("SimJoin rows = %d", sj.NumRows())
	}
}
